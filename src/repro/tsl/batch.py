"""Batch blob encoding and decoding: one compiled layout plan per node type.

``GraphBuilder.finalize`` historically walked the TSL type tree once per
node — per-field dict lookups, per-element ``struct.pack`` calls.  For a
bulk load that is the dominant cost after edge ingest.  This module
compiles a :class:`~repro.tsl.types.StructType` into a *batch encoder*
once per node type; encoding then runs column-at-a-time, with a numpy
fast path for the layout that dominates graph cells: ``List<primitive>``
adjacency fields, which become one ``np.asarray(...).tobytes()`` per node
instead of one ``struct.pack`` per element.

The fast path is **bit-identical** to the scalar encoder: numpy's C casts
match the scalar casters (``int()`` truncation toward zero, IEEE float
narrowing, bool widening), and any value numpy cannot convert falls back
to the scalar element encoder so error behaviour matches too.  The
equivalence is test-pinned by a hypothesis suite.

The read direction mirrors it: :class:`BatchStructDecoder` decodes one
field across a batch of cell blobs column-at-a-time.  ``List<primitive>``
fields come back CSR-style — one ``(indptr, flat_values)`` pair built
from a single ``np.frombuffer`` over the concatenated element bytes,
instead of one Python list (and one ``struct.unpack`` per element) per
blob — and ``field_counts`` reads only the varint list headers, which is
what makes a batched ``degree()`` O(header) instead of O(degree).
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..errors import SchemaMismatchError
from ..utils.arrays import gather_ranges, range_indices
from ..utils.varint import (
    VarintBatchError,
    decode_varint,
    encode_varint,
    read_varints,
)
from .layout import (
    LAYOUT_BITMAP,
    LAYOUT_DELTA_VARINT,
    LAYOUT_RAW,
    encode_adjacency_segments,
)
from .types import (
    BOOL,
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    STRING,
    AdjacencyListType,
    ListType,
    StructType,
    TslType,
)

# Primitive element types whose scalar struct codes have exact numpy
# dtype twins (little-endian, no padding) *including error behaviour*:
# numpy raises on out-of-range integers exactly where struct.pack does.
# FLOAT is deliberately absent — float64→float32 overflow becomes a
# silent inf under numpy where ``struct.pack('<f')`` raises.
_NUMPY_DTYPES = {
    id(BYTE): np.dtype("u1"),
    id(BOOL): np.dtype("?"),
    id(SHORT): np.dtype("<i2"),
    id(INT): np.dtype("<i4"),
    id(LONG): np.dtype("<i8"),
    id(DOUBLE): np.dtype("<f8"),
}

# Lengths below 128 encode as a single varint byte; precomputing them
# skips an encode_varint call per list in the hot column loop.
_VARINT_SMALL = [encode_varint(i) for i in range(128)]


def encode_varint_small(n: int) -> bytes:
    """``encode_varint`` with the single-byte range precomputed."""
    return _VARINT_SMALL[n] if n < 128 else encode_varint(n)


class _FieldPlan:
    """Encodes one field for every record in a batch (a column)."""

    def __init__(self, name: str, tsl_type: TslType):
        self.name = name
        self.tsl_type = tsl_type
        self._dtype = None
        self._adjacency = isinstance(tsl_type, AdjacencyListType)
        if isinstance(tsl_type, ListType) and not self._adjacency:
            self._dtype = _NUMPY_DTYPES.get(id(tsl_type.element))

    def encode_column(self, values: list) -> list[bytes]:
        if self._adjacency:
            return self._encode_adjacency_column(values)
        if self._dtype is None:
            encode = self.tsl_type.encode
            return [encode(value) for value in values]
        column = self._encode_column_flat(values)
        if column is not None:
            return column
        out = []
        dtype = self._dtype
        scalar_encode = self.tsl_type.encode
        for value in values:
            if type(value) in (list, tuple):
                try:
                    array = np.asarray(value, dtype=dtype)
                except (ValueError, TypeError, OverflowError):
                    # Let the scalar path produce the canonical result
                    # (or the canonical SchemaMismatchError).
                    out.append(scalar_encode(value))
                    continue
                if array.ndim != 1:
                    # Nested sequences: the scalar element caster decides
                    # whether that is encodable (it usually raises).
                    out.append(scalar_encode(value))
                    continue
                out.append(encode_varint(len(value)) + array.tobytes())
            else:
                out.append(scalar_encode(value))
        return out

    def _encode_column_flat(self, values: list) -> list[bytes] | None:
        """Whole-column conversion: one numpy cast for every element.

        Concatenates all lists, converts once, then slices the resulting
        byte blob per record — byte-for-byte the same output as one
        conversion per list.  Returns ``None`` (caller falls back to the
        per-value path, which in turn falls back per value to the scalar
        encoder) whenever anything is irregular: a non-list value, a
        nested sequence (it survives one level of chaining but yields a
        2-D array), or an element the dtype rejects.
        """
        if not all(type(value) in (list, tuple) for value in values):
            return None
        lengths = [len(value) for value in values]
        try:
            flat = np.asarray(list(chain.from_iterable(values)),
                              dtype=self._dtype)
        except (ValueError, TypeError, OverflowError):
            return None
        if flat.ndim != 1 or len(flat) != sum(lengths):
            return None
        blob = flat.tobytes()
        itemsize = self._dtype.itemsize
        small = _VARINT_SMALL
        out = []
        position = 0
        for length in lengths:
            nbytes = length * itemsize
            prefix = small[length] if length < 128 else encode_varint(length)
            out.append(prefix + blob[position:position + nbytes])
            position += nbytes
        return out

    def _encode_adjacency_column(self, values: list) -> list[bytes]:
        """Whole-column adjacency encode through the segment codec.

        One numpy cast + one :func:`encode_adjacency_segments` call for
        the column; anything irregular falls back per column to the
        scalar type encoder, which applies the same policy bit for bit
        (both run the same single chooser) or raises the canonical error.
        """
        scalar_encode = self.tsl_type.encode
        if not all(type(value) in (list, tuple) for value in values):
            return [scalar_encode(value) for value in values]
        lengths = [len(value) for value in values]
        try:
            flat = np.asarray(list(chain.from_iterable(values)),
                              dtype=np.dtype("<i8"))
        except (ValueError, TypeError, OverflowError):
            return [scalar_encode(value) for value in values]
        if flat.ndim != 1 or len(flat) != sum(lengths):
            return [scalar_encode(value) for value in values]
        indptr = np.zeros(len(values) + 1, dtype=np.int64)
        np.cumsum(np.asarray(lengths, dtype=np.int64), out=indptr[1:])
        return encode_adjacency_segments(flat, indptr[:-1], indptr[1:],
                                         self.tsl_type.policy)


class BatchStructEncoder:
    """Column-at-a-time encoder for one struct type."""

    def __init__(self, struct_type: StructType):
        self.struct_type = struct_type
        self._plans = [
            _FieldPlan(name, tsl_type)
            for name, tsl_type in struct_type.fields
        ]

    def encode_many(self, records: list[dict]) -> list[bytes]:
        """Encode a batch of records; ≡ ``[struct.encode(r) for r in records]``.

        Missing fields take the field default, exactly like the scalar
        encoder; unknown fields raise through the scalar validator.
        """
        if not records:
            return []
        known = {plan.name for plan in self._plans}
        for record in records:
            unknown = set(record) - known
            if unknown:
                # Defer to the scalar encoder for its canonical error.
                return [self.struct_type.encode(r) for r in records]
        columns = []
        for plan in self._plans:
            default = plan.tsl_type.default
            column = [record.get(plan.name, _MISSING) for record in records]
            for i, value in enumerate(column):
                if value is _MISSING:
                    column[i] = default()
            columns.append(plan.encode_column(column))
        return [b"".join(parts) for parts in zip(*columns)]


_MISSING = object()

_ENCODER_CACHE: dict[int, BatchStructEncoder] = {}


def batch_encoder_for(struct_type: StructType) -> BatchStructEncoder:
    """Get (or compile) the batch encoder for a struct type.

    Cached per StructType instance — this is the "compile the layout once
    per node type, not per node" half of the bulk loading path.
    """
    encoder = _ENCODER_CACHE.get(id(struct_type))
    if encoder is None or encoder.struct_type is not struct_type:
        encoder = BatchStructEncoder(struct_type)
        _ENCODER_CACHE[id(struct_type)] = encoder
    return encoder


# ---------------------------------------------------------------------------
# Batch decoding (the read direction of the bulk data path)
# ---------------------------------------------------------------------------

# FLOAT decodes safely through numpy (f32 -> Python float matches
# ``struct.unpack('<f')`` exactly); it is only excluded from the *encode*
# dtype map above because of the silent-inf narrowing hazard.
_DECODE_DTYPES = dict(_NUMPY_DTYPES)
_DECODE_DTYPES[id(FLOAT)] = np.dtype("<f4")


class _ScalarFallback(Exception):
    """Internal: the packed fast path cannot handle this batch.

    Raised when a layout is not vectorizable (variable-size elements in
    the skip chain) or when the input looks malformed — the caller
    reruns the per-blob scalar path, which either succeeds or produces
    the canonical exception.
    """


def _pack_blobs(blobs) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate a blob batch into ``(byte_buffer, bounds)``.

    ``bounds[i]:bounds[i + 1]`` delimits blob ``i`` inside the buffer.
    """
    buf = np.frombuffer(b"".join(blobs), dtype=np.uint8)
    bounds = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(b) for b in blobs), dtype=np.int64,
                    count=len(blobs)),
        out=bounds[1:],
    )
    return buf, bounds


def _read_varints(buf: np.ndarray, pos: np.ndarray, limits: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """One LEB128 varint per position via the shared vectorized codec.

    Thin wrapper over :func:`repro.utils.varint.read_varints` (the single
    LEB128 implementation in the tree) that maps its
    :class:`VarintBatchError` onto :class:`_ScalarFallback` so the scalar
    path can produce the canonical result or error.
    """
    try:
        return read_varints(buf, pos, limits)
    except VarintBatchError:
        raise _ScalarFallback from None


def _read_adjacency_headers(buf: np.ndarray, pos: np.ndarray,
                            limits: np.ndarray
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(counts, tags, payload_positions)`` for an adjacency column.

    Reserved tag 3 drops to the scalar path, which raises the canonical
    :class:`SchemaMismatchError` for it.
    """
    headers, payload = _read_varints(buf, pos, limits)
    tags = headers & 3
    if np.any(tags == 3):
        raise _ScalarFallback
    return headers >> 2, tags, payload


def _skip_adjacency_vec(buf: np.ndarray, pos: np.ndarray,
                        limits: np.ndarray) -> np.ndarray:
    """Vectorized ``AdjacencyListType.skip`` across one blob column."""
    counts, tags, payload = _read_adjacency_headers(buf, pos, limits)
    out = np.empty_like(payload)
    raw = tags == LAYOUT_RAW
    out[raw] = payload[raw] + counts[raw] * 8
    delta = np.flatnonzero(tags == LAYOUT_DELTA_VARINT)
    if len(delta):
        nbytes, after = _read_varints(buf, payload[delta], limits[delta])
        out[delta] = after + nbytes
    bitmap = np.flatnonzero(tags == LAYOUT_BITMAP)
    if len(bitmap):
        _, after = _read_varints(buf, payload[bitmap], limits[bitmap])
        nbytes, after = _read_varints(buf, after, limits[bitmap])
        out[bitmap] = after + nbytes
    if np.any(out > limits):
        raise _ScalarFallback  # scalar skip/decode raises the canonical error
    return out


def _decode_delta_group(buf: np.ndarray, pos: np.ndarray,
                        limits: np.ndarray, counts: np.ndarray
                        ) -> np.ndarray:
    """Vectorized ``LAYOUT_DELTA_VARINT`` decode for one column group.

    One gather for every list's payload bytes, then the whole varint
    stream is segmented by its continuation bits in one pass: per-byte
    shift-accumulate builds the zigzag codes, and a wrap-safe segmented
    prefix sum (uint64 cumsum minus each list's basis) undoes the
    deltas.  Anything that does not look like our own encoder's output —
    boundary-crossing varints, 11-byte codes, a negative reconstructed
    id (the encoder only delta-encodes non-negative lists) — drops to
    the scalar reference decoder.
    """
    nbytes, payload_start = _read_varints(buf, pos, limits)
    if (payload_start + nbytes > limits).any():
        raise _ScalarFallback
    if ((counts == 0) & (nbytes > 0)).any():
        raise _ScalarFallback
    payload = gather_ranges(buf, payload_start, nbytes)
    total_values = int(counts.sum())
    if not len(payload):
        if total_values:
            raise _ScalarFallback
        return np.empty(0, dtype=np.int64)
    ends = (payload & 0x80) == 0
    byte_cuts = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(nbytes, out=byte_cuts[1:])
    # Every nonempty list's last byte must be an end byte: together with
    # the per-range start counts below this rules out any varint
    # straddling two lists' payloads (a straddler would leave a
    # continuation bit set on some list's tail byte).  It also pins the
    # final payload byte as an end byte, so dropping the last entry of
    # ``end_positions`` below yields exactly the inner varint starts.
    tails = byte_cuts[1:][nbytes > 0] - 1
    if not ends[tails].all():
        raise _ScalarFallback
    end_positions = np.flatnonzero(ends)
    if len(end_positions) != total_values:
        raise _ScalarFallback
    varint_starts = np.empty(total_values, dtype=np.int64)
    varint_starts[0] = 0
    varint_starts[1:] = end_positions[:-1] + 1
    # Every list's byte range must hold exactly its count of varints:
    # count the varint starts inside each range with one binary search
    # (varint_starts is sorted) instead of a payload-length prefix sum.
    if (np.diff(np.searchsorted(varint_starts, byte_cuts))
            != counts).any():
        raise _ScalarFallback
    # Shift-accumulate by byte *position* instead of per byte: pass r
    # gathers the r-th byte of every varint long enough to have one, so
    # the work is O(max_varint_len) vectorized passes (2-3 for graph
    # ids) rather than per-payload-byte scatter.
    lengths = np.diff(varint_starts, append=len(payload))
    max_len = int(lengths.max())
    if max_len > 10:
        raise _ScalarFallback
    codes = (payload[varint_starts] & 0x7F).astype(np.uint64)
    for r in range(1, max_len):
        idx = np.flatnonzero(lengths > r)
        chunk = (payload[varint_starts[idx] + r] & 0x7F).astype(np.uint64)
        if r == 9 and (chunk != 1).any():
            # A 10th byte may only contribute bit 63; anything else
            # exceeds uint64 and the scalar decoder owns the error.
            raise _ScalarFallback
        codes[idx] |= chunk << np.uint64(7 * r)
    deltas = ((codes >> np.uint64(1)).astype(np.int64)
              ^ -(codes & np.uint64(1)).astype(np.int64))
    # Segmented prefix sum, wrap-safe: uint64 cumulates mod 2**64 and the
    # per-list basis subtraction recovers the exact value whenever it
    # fits in int64 (guaranteed for encoder output: ids are >= 0).
    running = np.cumsum(deltas.view(np.uint64))
    basis = np.concatenate((np.zeros(1, dtype=np.uint64), running))
    value_cuts = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=value_cuts[1:])
    values = (running - np.repeat(basis[value_cuts[:-1]], counts)
              ).astype(np.int64)
    if int(values.min()) < 0:
        raise _ScalarFallback
    return values


def _decode_bitmap_group(buf: np.ndarray, pos: np.ndarray,
                         limits: np.ndarray, counts: np.ndarray
                         ) -> np.ndarray:
    """Vectorized ``LAYOUT_BITMAP`` decode for one column group.

    One gather for all bitmap bytes, one ``np.unpackbits``, and one
    ``searchsorted`` to map every set bit back to its list; ids come out
    ascending per list, which is the stored order for any
    bitmap-eligible list.  Popcount mismatches drop to the scalar
    reference decoder for the canonical error.
    """
    bases, after = _read_varints(buf, pos, limits)
    nbytes, payload_start = _read_varints(buf, after, limits)
    if np.any(payload_start + nbytes > limits):
        raise _ScalarFallback
    payload = gather_ranges(buf, payload_start, nbytes)
    bits = np.unpackbits(payload, bitorder="little")
    set_positions = np.flatnonzero(bits)
    if len(set_positions) != int(counts.sum()):
        raise _ScalarFallback
    bit_cuts = 8 * np.cumsum(nbytes)
    owner = np.searchsorted(bit_cuts, set_positions, side="right")
    if np.any(np.bincount(owner, minlength=len(counts)) != counts):
        raise _ScalarFallback
    bit_starts = np.concatenate((np.zeros(1, dtype=np.int64),
                                 bit_cuts))[owner]
    values = bases[owner] + (set_positions - bit_starts)
    if np.any(values < bases[owner]):
        raise _ScalarFallback  # int64 wrap: scalar owns the error
    return values


def _slice_blobs(buf: np.ndarray, starts: np.ndarray, limits: np.ndarray
                 ) -> list[bytes]:
    """Per-blob ``bytes`` for a span batch (the scalar-fallback form)."""
    return [buf[s:l].tobytes()
            for s, l in zip(starts.tolist(), limits.tolist())]


class BatchStructDecoder:
    """Column-at-a-time field decoder for one struct type.

    Field location is compiled once: the run of fixed-size predecessors
    before each field collapses to a static byte offset, and only the
    variable-size predecessors (strings, lists) are skipped per blob.
    """

    def __init__(self, struct_type: StructType):
        self.struct_type = struct_type
        self._locators: dict[str, tuple[int, tuple[TslType, ...]]] = {}
        fixed_prefix = 0
        variable: list[TslType] = []
        for name, tsl_type in struct_type.fields:
            self._locators[name] = (fixed_prefix, tuple(variable))
            if tsl_type.fixed_size is not None and not variable:
                fixed_prefix += tsl_type.fixed_size
            else:
                variable.append(tsl_type)

    def field_type(self, field_name: str) -> TslType:
        return self.struct_type.field_type(field_name)

    def _offset_in(self, blob, field_name: str) -> int:
        """Byte offset of ``field_name`` inside one cell blob."""
        try:
            base, variable = self._locators[field_name]
        except KeyError:
            raise SchemaMismatchError(
                f"{self.struct_type.name} has no field {field_name!r}"
            ) from None
        offset = base
        for tsl_type in variable:
            offset = tsl_type.skip(blob, offset)
        return offset

    def _locator(self, field_name: str) -> tuple[int, tuple[TslType, ...]]:
        try:
            return self._locators[field_name]
        except KeyError:
            raise SchemaMismatchError(
                f"{self.struct_type.name} has no field {field_name!r}"
            ) from None

    def _field_positions(self, buf: np.ndarray, starts: np.ndarray,
                         limits: np.ndarray, field_name: str) -> np.ndarray:
        """Absolute field offsets for every blob span in a batch.

        The whole skip chain runs column-at-a-time: fixed-size
        predecessors are one vectorized add, strings and
        ``List<fixed-size>`` predecessors are one vectorized varint pass
        plus an add.  Any other variable-size predecessor (nested lists,
        ``List<string>``) raises :class:`_ScalarFallback`.
        """
        base, variable = self._locator(field_name)
        pos = starts + base
        for tsl_type in variable:
            if tsl_type.fixed_size is not None:
                pos = pos + tsl_type.fixed_size
            elif tsl_type is STRING:
                lengths, pos = _read_varints(buf, pos, limits)
                pos = pos + lengths
            elif isinstance(tsl_type, AdjacencyListType):
                pos = _skip_adjacency_vec(buf, pos, limits)
            elif (isinstance(tsl_type, ListType)
                  and tsl_type.element.fixed_size is not None):
                counts, pos = _read_varints(buf, pos, limits)
                pos = pos + counts * tsl_type.element.fixed_size
            else:
                raise _ScalarFallback
        return pos

    def csr_dtype(self, field_name: str) -> np.dtype | None:
        """The numpy element dtype when the field has a CSR fast path."""
        tsl_type = self.field_type(field_name)
        if isinstance(tsl_type, ListType):
            return _NUMPY_DTYPES.get(id(tsl_type.element))
        return None

    def field_counts(self, blobs, field_name: str) -> np.ndarray:
        """List lengths for a ``List<T>`` field, one per blob.

        Decodes only each blob's varint count header — never the
        elements — which is the whole point of a batched ``degree()``.
        """
        self._require_list(field_name)
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._field_counts_vec(buf, bounds[:-1], bounds[1:],
                                              field_name)
            except _ScalarFallback:
                pass
        counts = np.empty(len(blobs), dtype=np.int64)
        offset_in = self._offset_in
        decode_count = self.field_type(field_name).decode_count
        for i, blob in enumerate(blobs):
            counts[i], _ = decode_count(blob, offset_in(blob, field_name))
        return counts

    def field_counts_packed(self, buf: np.ndarray, bounds: np.ndarray,
                            field_name: str) -> np.ndarray:
        """:meth:`field_counts` over a packed ``(buffer, bounds)`` batch."""
        return self.field_counts_spans(buf, bounds[:-1], bounds[1:],
                                       field_name)

    def field_counts_spans(self, buf: np.ndarray, starts: np.ndarray,
                           limits: np.ndarray, field_name: str) -> np.ndarray:
        """:meth:`field_counts` over arbitrary blob spans of one buffer."""
        self._require_list(field_name)
        if len(starts):
            try:
                return self._field_counts_vec(buf, starts, limits,
                                              field_name)
            except _ScalarFallback:
                pass
        return self.field_counts(_slice_blobs(buf, starts, limits),
                                 field_name)

    def _require_list(self, field_name: str) -> None:
        tsl_type = self.field_type(field_name)
        if not isinstance(tsl_type, ListType):
            raise SchemaMismatchError(
                f"{field_name!r} is {tsl_type.name}, not a List field"
            )

    def _field_counts_vec(self, buf, starts, limits,
                          field_name: str) -> np.ndarray:
        pos = self._field_positions(buf, starts, limits, field_name)
        if isinstance(self.field_type(field_name), AdjacencyListType):
            counts, _, _ = _read_adjacency_headers(buf, pos, limits)
            return counts
        counts, _ = _read_varints(buf, pos, limits)
        return counts

    def decode_list_csr(self, blobs, field_name: str
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a ``List<primitive>`` column as ``(indptr, flat)``.

        ``flat[indptr[i]:indptr[i + 1]]`` holds blob ``i``'s elements.
        One pass collects each blob's element bytes; a single
        ``np.frombuffer`` over their concatenation replaces one
        ``struct.unpack`` per element — the same trick as the bulk
        encoder, run in reverse.  ``flat.tolist()`` of any slice equals
        the scalar ``ListType.decode`` value exactly (numpy and
        ``struct`` agree on every little-endian primitive).
        """
        dtype = self.csr_dtype(field_name)
        if dtype is None:
            raise SchemaMismatchError(
                f"{field_name!r} has no numpy-decodable element type"
            )
        itemsize = dtype.itemsize
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._decode_list_csr_vec(buf, bounds[:-1],
                                                 bounds[1:], field_name,
                                                 dtype)
            except _ScalarFallback:
                pass
        tsl_type = self.field_type(field_name)
        offset_in = self._offset_in
        if isinstance(tsl_type, AdjacencyListType):
            # Per-blob scalar decode (the canonical reference): each
            # layout's payload codec materialises the same int64 values.
            indptr = np.zeros(len(blobs) + 1, dtype=np.int64)
            lists = []
            total = 0
            for i, blob in enumerate(blobs):
                values, _ = tsl_type.decode(blob,
                                            offset_in(blob, field_name))
                total += len(values)
                indptr[i + 1] = total
                lists.append(values)
            flat = np.fromiter(chain.from_iterable(lists), dtype=np.int64,
                               count=total)
            return indptr, flat
        indptr = np.zeros(len(blobs) + 1, dtype=np.int64)
        parts = []
        total = 0
        for i, blob in enumerate(blobs):
            count, start = decode_varint(blob, offset_in(blob, field_name))
            nbytes = count * itemsize
            if start + nbytes > len(blob):
                raise SchemaMismatchError(
                    f"blob too short for {field_name!r} "
                    f"({count} x {itemsize}-byte elements)"
                )
            total += count
            indptr[i + 1] = total
            if nbytes:
                parts.append(blob[start:start + nbytes])
        flat = np.frombuffer(b"".join(parts), dtype=dtype)
        return indptr, flat

    def decode_list_csr_packed(self, buf: np.ndarray, bounds: np.ndarray,
                               field_name: str
                               ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`decode_list_csr` over a packed ``(buffer, bounds)``
        batch — no per-blob ``bytes`` objects anywhere on the fast path."""
        return self.decode_list_csr_spans(buf, bounds[:-1], bounds[1:],
                                          field_name)

    def decode_list_csr_spans(self, buf: np.ndarray, starts: np.ndarray,
                              limits: np.ndarray, field_name: str
                              ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`decode_list_csr` over arbitrary blob spans of one
        buffer (e.g. live trunk-arena views)."""
        dtype = self.csr_dtype(field_name)
        if dtype is None:
            raise SchemaMismatchError(
                f"{field_name!r} has no numpy-decodable element type"
            )
        if len(starts):
            try:
                return self._decode_list_csr_vec(buf, starts, limits,
                                                 field_name, dtype)
            except _ScalarFallback:
                pass
        return self.decode_list_csr(_slice_blobs(buf, starts, limits),
                                    field_name)

    def _decode_list_csr_vec(self, buf, starts, limits, field_name: str,
                             dtype: np.dtype
                             ) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(self.field_type(field_name), AdjacencyListType):
            return self._decode_adjacency_csr_vec(buf, starts, limits,
                                                  field_name)
        itemsize = dtype.itemsize
        pos = self._field_positions(buf, starts, limits, field_name)
        counts, data_start = _read_varints(buf, pos, limits)
        nbytes = counts * itemsize
        short = data_start + nbytes > limits
        if np.any(short):
            bad = int(np.flatnonzero(short)[0])
            raise SchemaMismatchError(
                f"blob too short for {field_name!r} "
                f"({int(counts[bad])} x {itemsize}-byte elements)"
            )
        indptr = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, gather_ranges(buf, data_start, nbytes).view(dtype)

    def _decode_adjacency_csr_vec(self, buf, starts, limits,
                                  field_name: str
                                  ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar adjacency decode, dispatched per layout group.

        The column is partitioned by header tag; each group decodes with
        its own vectorized codec and scatters into one flat CSR output,
        so a frontier mixing raw tails, delta hubs and bitmap hubs still
        costs O(groups) numpy passes.  Any structural anomaly drops to
        :class:`_ScalarFallback` — the per-blob scalar decoders are the
        canonical reference for both values and errors.
        """
        pos = self._field_positions(buf, starts, limits, field_name)
        counts, tags, payload = _read_adjacency_headers(buf, pos, limits)
        indptr = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Single-tag fast paths: a homogeneous column needs no per-group
        # scatter — the group decoder's output already is the flat CSR.
        first = int(tags[0])
        if (tags == first).all():
            if first == LAYOUT_RAW:
                nbytes = counts * 8
                if (payload + nbytes > limits).any():
                    raise _ScalarFallback
                return indptr, gather_ranges(buf, payload,
                                             nbytes).view(np.int64)
            if first == LAYOUT_DELTA_VARINT:
                return indptr, _decode_delta_group(buf, payload, limits,
                                                   counts)
            if first == LAYOUT_BITMAP:
                return indptr, _decode_bitmap_group(buf, payload, limits,
                                                    counts)
            raise _ScalarFallback  # reserved tag: scalar owns the error
        flat = np.empty(int(indptr[-1]), dtype=np.int64)
        raw = np.flatnonzero(tags == LAYOUT_RAW)
        if len(raw):
            nbytes = counts[raw] * 8
            if np.any(payload[raw] + nbytes > limits[raw]):
                raise _ScalarFallback
            values = gather_ranges(buf, payload[raw], nbytes).view(np.int64)
            flat[range_indices(indptr[raw], counts[raw])] = values
        delta = np.flatnonzero(tags == LAYOUT_DELTA_VARINT)
        if len(delta):
            values = _decode_delta_group(buf, payload[delta], limits[delta],
                                         counts[delta])
            flat[range_indices(indptr[delta], counts[delta])] = values
        bitmap = np.flatnonzero(tags == LAYOUT_BITMAP)
        if len(bitmap):
            values = _decode_bitmap_group(buf, payload[bitmap],
                                          limits[bitmap], counts[bitmap])
            flat[range_indices(indptr[bitmap], counts[bitmap])] = values
        return indptr, flat

    def decode_column(self, blobs, field_name: str) -> list:
        """Per-blob Python values for any field, CSR-accelerated when
        possible; elementwise equal to scalar ``decode`` per blob."""
        if self.csr_dtype(field_name) is not None:
            indptr, flat = self.decode_list_csr(blobs, field_name)
            values = flat.tolist()
            bounds = indptr.tolist()
            return [values[bounds[i]:bounds[i + 1]]
                    for i in range(len(blobs))]
        tsl_type = self.field_type(field_name)
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._decode_column_vec(buf, bounds[:-1], bounds[1:],
                                               field_name, tsl_type)
            except _ScalarFallback:
                pass
        decode = tsl_type.decode
        offset_in = self._offset_in
        return [decode(blob, offset_in(blob, field_name))[0]
                for blob in blobs]

    def decode_column_packed(self, buf: np.ndarray, bounds: np.ndarray,
                             field_name: str) -> list:
        """:meth:`decode_column` over a packed ``(buffer, bounds)`` batch."""
        return self.decode_column_spans(buf, bounds[:-1], bounds[1:],
                                        field_name)

    def decode_column_spans(self, buf: np.ndarray, starts: np.ndarray,
                            limits: np.ndarray, field_name: str) -> list:
        """:meth:`decode_column` over arbitrary blob spans of one buffer."""
        if self.csr_dtype(field_name) is not None:
            indptr, flat = self.decode_list_csr_spans(buf, starts, limits,
                                                      field_name)
            values = flat.tolist()
            cuts = indptr.tolist()
            return [values[cuts[i]:cuts[i + 1]]
                    for i in range(len(starts))]
        tsl_type = self.field_type(field_name)
        if len(starts):
            try:
                return self._decode_column_vec(buf, starts, limits,
                                               field_name, tsl_type)
            except _ScalarFallback:
                pass
        return self.decode_column(_slice_blobs(buf, starts, limits),
                                  field_name)

    def _decode_column_vec(self, buf, starts, limits, field_name: str,
                           tsl_type: TslType) -> list:
        if tsl_type is STRING:
            return self._decode_string_column(buf, starts, limits,
                                              field_name)
        dtype = _DECODE_DTYPES.get(id(tsl_type))
        if dtype is None:
            raise _ScalarFallback
        return self._decode_fixed_column(buf, starts, limits, field_name,
                                         dtype)

    def _decode_string_column(self, buf, starts, limits, field_name: str
                              ) -> list[str]:
        """One vectorized varint pass + one gather for a string column."""
        pos = self._field_positions(buf, starts, limits, field_name)
        lengths, data_start = _read_varints(buf, pos, limits)
        if np.any(data_start + lengths > limits):
            raise SchemaMismatchError("blob too short for string")
        raw = gather_ranges(buf, data_start, lengths).tobytes()
        offsets = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        cuts = offsets.tolist()
        return [raw[cuts[i]:cuts[i + 1]].decode("utf-8")
                for i in range(len(starts))]

    def _decode_fixed_column(self, buf, starts, limits, field_name: str,
                             dtype: np.dtype) -> list:
        """One gather for a fixed-width primitive column."""
        pos = self._field_positions(buf, starts, limits, field_name)
        size = dtype.itemsize
        if np.any(pos + size > limits):
            raise _ScalarFallback  # scalar decode raises the canonical error
        positions = (pos[:, None] + np.arange(size)).ravel()
        return buf[positions].view(dtype).tolist()

    def string_eq_spans(self, buf: np.ndarray, starts: np.ndarray,
                        limits: np.ndarray, field_name: str,
                        value: str) -> np.ndarray:
        """``field == value`` per blob span, without building strings.

        Length mismatches are rejected by the varint headers alone; only
        equal-length candidates get a byte compare — one fancy-index
        gather for the whole batch.  Equivalent to decoding the column
        and comparing, because utf-8 encoding is injective.
        """
        if self.field_type(field_name) is not STRING:
            return np.asarray(
                [v == value
                 for v in self.decode_column_spans(buf, starts, limits,
                                                   field_name)],
                dtype=bool)
        needle = np.frombuffer(value.encode("utf-8"), dtype=np.uint8)
        try:
            pos = self._field_positions(buf, starts, limits, field_name)
            lengths, data_start = _read_varints(buf, pos, limits)
        except _ScalarFallback:
            column = self.decode_column_spans(buf, starts, limits,
                                              field_name)
            return np.asarray([v == value for v in column], dtype=bool)
        if np.any(data_start + lengths > limits):
            raise SchemaMismatchError("blob too short for string")
        hits = lengths == len(needle)
        candidates = np.flatnonzero(hits)
        if len(candidates) and len(needle):
            positions = (data_start[candidates][:, None]
                         + np.arange(len(needle))).ravel()
            raw = buf[positions].reshape(len(candidates), len(needle))
            hits[candidates] = (raw == needle).all(axis=1)
        return hits


_DECODER_CACHE: dict[int, BatchStructDecoder] = {}


def batch_decoder_for(struct_type: StructType) -> BatchStructDecoder:
    """Get (or compile) the batch decoder for a struct type (cached)."""
    decoder = _DECODER_CACHE.get(id(struct_type))
    if decoder is None or decoder.struct_type is not struct_type:
        decoder = BatchStructDecoder(struct_type)
        _DECODER_CACHE[id(struct_type)] = decoder
    return decoder
