"""Batch blob encoding and decoding: one compiled layout plan per node type.

``GraphBuilder.finalize`` historically walked the TSL type tree once per
node — per-field dict lookups, per-element ``struct.pack`` calls.  For a
bulk load that is the dominant cost after edge ingest.  This module
compiles a :class:`~repro.tsl.types.StructType` into a *batch encoder*
once per node type; encoding then runs column-at-a-time, with a numpy
fast path for the layout that dominates graph cells: ``List<primitive>``
adjacency fields, which become one ``np.asarray(...).tobytes()`` per node
instead of one ``struct.pack`` per element.

The fast path is **bit-identical** to the scalar encoder: numpy's C casts
match the scalar casters (``int()`` truncation toward zero, IEEE float
narrowing, bool widening), and any value numpy cannot convert falls back
to the scalar element encoder so error behaviour matches too.  The
equivalence is test-pinned by a hypothesis suite.

The read direction mirrors it: :class:`BatchStructDecoder` decodes one
field across a batch of cell blobs column-at-a-time.  ``List<primitive>``
fields come back CSR-style — one ``(indptr, flat_values)`` pair built
from a single ``np.frombuffer`` over the concatenated element bytes,
instead of one Python list (and one ``struct.unpack`` per element) per
blob — and ``field_counts`` reads only the varint list headers, which is
what makes a batched ``degree()`` O(header) instead of O(degree).
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..errors import SchemaMismatchError
from ..utils.arrays import gather_ranges
from ..utils.varint import decode_varint, encode_varint
from .types import (
    BOOL,
    BYTE,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    STRING,
    ListType,
    StructType,
    TslType,
)

# Primitive element types whose scalar struct codes have exact numpy
# dtype twins (little-endian, no padding) *including error behaviour*:
# numpy raises on out-of-range integers exactly where struct.pack does.
# FLOAT is deliberately absent — float64→float32 overflow becomes a
# silent inf under numpy where ``struct.pack('<f')`` raises.
_NUMPY_DTYPES = {
    id(BYTE): np.dtype("u1"),
    id(BOOL): np.dtype("?"),
    id(SHORT): np.dtype("<i2"),
    id(INT): np.dtype("<i4"),
    id(LONG): np.dtype("<i8"),
    id(DOUBLE): np.dtype("<f8"),
}

# Lengths below 128 encode as a single varint byte; precomputing them
# skips an encode_varint call per list in the hot column loop.
_VARINT_SMALL = [encode_varint(i) for i in range(128)]


def encode_varint_small(n: int) -> bytes:
    """``encode_varint`` with the single-byte range precomputed."""
    return _VARINT_SMALL[n] if n < 128 else encode_varint(n)


class _FieldPlan:
    """Encodes one field for every record in a batch (a column)."""

    def __init__(self, name: str, tsl_type: TslType):
        self.name = name
        self.tsl_type = tsl_type
        self._dtype = None
        if isinstance(tsl_type, ListType):
            self._dtype = _NUMPY_DTYPES.get(id(tsl_type.element))

    def encode_column(self, values: list) -> list[bytes]:
        if self._dtype is None:
            encode = self.tsl_type.encode
            return [encode(value) for value in values]
        column = self._encode_column_flat(values)
        if column is not None:
            return column
        out = []
        dtype = self._dtype
        scalar_encode = self.tsl_type.encode
        for value in values:
            if type(value) in (list, tuple):
                try:
                    array = np.asarray(value, dtype=dtype)
                except (ValueError, TypeError, OverflowError):
                    # Let the scalar path produce the canonical result
                    # (or the canonical SchemaMismatchError).
                    out.append(scalar_encode(value))
                    continue
                if array.ndim != 1:
                    # Nested sequences: the scalar element caster decides
                    # whether that is encodable (it usually raises).
                    out.append(scalar_encode(value))
                    continue
                out.append(encode_varint(len(value)) + array.tobytes())
            else:
                out.append(scalar_encode(value))
        return out

    def _encode_column_flat(self, values: list) -> list[bytes] | None:
        """Whole-column conversion: one numpy cast for every element.

        Concatenates all lists, converts once, then slices the resulting
        byte blob per record — byte-for-byte the same output as one
        conversion per list.  Returns ``None`` (caller falls back to the
        per-value path, which in turn falls back per value to the scalar
        encoder) whenever anything is irregular: a non-list value, a
        nested sequence (it survives one level of chaining but yields a
        2-D array), or an element the dtype rejects.
        """
        if not all(type(value) in (list, tuple) for value in values):
            return None
        lengths = [len(value) for value in values]
        try:
            flat = np.asarray(list(chain.from_iterable(values)),
                              dtype=self._dtype)
        except (ValueError, TypeError, OverflowError):
            return None
        if flat.ndim != 1 or len(flat) != sum(lengths):
            return None
        blob = flat.tobytes()
        itemsize = self._dtype.itemsize
        small = _VARINT_SMALL
        out = []
        position = 0
        for length in lengths:
            nbytes = length * itemsize
            prefix = small[length] if length < 128 else encode_varint(length)
            out.append(prefix + blob[position:position + nbytes])
            position += nbytes
        return out


class BatchStructEncoder:
    """Column-at-a-time encoder for one struct type."""

    def __init__(self, struct_type: StructType):
        self.struct_type = struct_type
        self._plans = [
            _FieldPlan(name, tsl_type)
            for name, tsl_type in struct_type.fields
        ]

    def encode_many(self, records: list[dict]) -> list[bytes]:
        """Encode a batch of records; ≡ ``[struct.encode(r) for r in records]``.

        Missing fields take the field default, exactly like the scalar
        encoder; unknown fields raise through the scalar validator.
        """
        if not records:
            return []
        known = {plan.name for plan in self._plans}
        for record in records:
            unknown = set(record) - known
            if unknown:
                # Defer to the scalar encoder for its canonical error.
                return [self.struct_type.encode(r) for r in records]
        columns = []
        for plan in self._plans:
            default = plan.tsl_type.default
            column = [record.get(plan.name, _MISSING) for record in records]
            for i, value in enumerate(column):
                if value is _MISSING:
                    column[i] = default()
            columns.append(plan.encode_column(column))
        return [b"".join(parts) for parts in zip(*columns)]


_MISSING = object()

_ENCODER_CACHE: dict[int, BatchStructEncoder] = {}


def batch_encoder_for(struct_type: StructType) -> BatchStructEncoder:
    """Get (or compile) the batch encoder for a struct type.

    Cached per StructType instance — this is the "compile the layout once
    per node type, not per node" half of the bulk loading path.
    """
    encoder = _ENCODER_CACHE.get(id(struct_type))
    if encoder is None or encoder.struct_type is not struct_type:
        encoder = BatchStructEncoder(struct_type)
        _ENCODER_CACHE[id(struct_type)] = encoder
    return encoder


# ---------------------------------------------------------------------------
# Batch decoding (the read direction of the bulk data path)
# ---------------------------------------------------------------------------

# FLOAT decodes safely through numpy (f32 -> Python float matches
# ``struct.unpack('<f')`` exactly); it is only excluded from the *encode*
# dtype map above because of the silent-inf narrowing hazard.
_DECODE_DTYPES = dict(_NUMPY_DTYPES)
_DECODE_DTYPES[id(FLOAT)] = np.dtype("<f4")


class _ScalarFallback(Exception):
    """Internal: the packed fast path cannot handle this batch.

    Raised when a layout is not vectorizable (variable-size elements in
    the skip chain) or when the input looks malformed — the caller
    reruns the per-blob scalar path, which either succeeds or produces
    the canonical exception.
    """


def _pack_blobs(blobs) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate a blob batch into ``(byte_buffer, bounds)``.

    ``bounds[i]:bounds[i + 1]`` delimits blob ``i`` inside the buffer.
    """
    buf = np.frombuffer(b"".join(blobs), dtype=np.uint8)
    bounds = np.zeros(len(blobs) + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(b) for b in blobs), dtype=np.int64,
                    count=len(blobs)),
        out=bounds[1:],
    )
    return buf, bounds


def _read_varints(buf: np.ndarray, pos: np.ndarray, limits: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Decode one LEB128 varint per position, all positions per round.

    Mirrors :func:`~repro.utils.varint.decode_varint` bit for bit for
    every value below 2**63; anything suspicious (a read past its blob's
    limit, a varint needing the 10th byte) raises :class:`_ScalarFallback`
    so the scalar path can produce the canonical result or error.
    """
    n = len(pos)
    values = np.zeros(n, dtype=np.int64)
    out_pos = pos.astype(np.int64, copy=True)
    active = np.arange(n)
    shift = 0
    while len(active):
        if shift > 56:  # 10-byte varints can exceed int64; let scalar decide
            raise _ScalarFallback
        cursor = out_pos[active]
        if np.any(cursor >= limits[active]):
            raise _ScalarFallback  # truncated varint
        byte = buf[cursor].astype(np.int64)
        values[active] |= (byte & 0x7F) << shift
        out_pos[active] = cursor + 1
        active = active[(byte & 0x80) != 0]
        shift += 7
    return values, out_pos


def _slice_blobs(buf: np.ndarray, starts: np.ndarray, limits: np.ndarray
                 ) -> list[bytes]:
    """Per-blob ``bytes`` for a span batch (the scalar-fallback form)."""
    return [buf[s:l].tobytes()
            for s, l in zip(starts.tolist(), limits.tolist())]


class BatchStructDecoder:
    """Column-at-a-time field decoder for one struct type.

    Field location is compiled once: the run of fixed-size predecessors
    before each field collapses to a static byte offset, and only the
    variable-size predecessors (strings, lists) are skipped per blob.
    """

    def __init__(self, struct_type: StructType):
        self.struct_type = struct_type
        self._locators: dict[str, tuple[int, tuple[TslType, ...]]] = {}
        fixed_prefix = 0
        variable: list[TslType] = []
        for name, tsl_type in struct_type.fields:
            self._locators[name] = (fixed_prefix, tuple(variable))
            if tsl_type.fixed_size is not None and not variable:
                fixed_prefix += tsl_type.fixed_size
            else:
                variable.append(tsl_type)

    def field_type(self, field_name: str) -> TslType:
        return self.struct_type.field_type(field_name)

    def _offset_in(self, blob, field_name: str) -> int:
        """Byte offset of ``field_name`` inside one cell blob."""
        try:
            base, variable = self._locators[field_name]
        except KeyError:
            raise SchemaMismatchError(
                f"{self.struct_type.name} has no field {field_name!r}"
            ) from None
        offset = base
        for tsl_type in variable:
            offset = tsl_type.skip(blob, offset)
        return offset

    def _locator(self, field_name: str) -> tuple[int, tuple[TslType, ...]]:
        try:
            return self._locators[field_name]
        except KeyError:
            raise SchemaMismatchError(
                f"{self.struct_type.name} has no field {field_name!r}"
            ) from None

    def _field_positions(self, buf: np.ndarray, starts: np.ndarray,
                         limits: np.ndarray, field_name: str) -> np.ndarray:
        """Absolute field offsets for every blob span in a batch.

        The whole skip chain runs column-at-a-time: fixed-size
        predecessors are one vectorized add, strings and
        ``List<fixed-size>`` predecessors are one vectorized varint pass
        plus an add.  Any other variable-size predecessor (nested lists,
        ``List<string>``) raises :class:`_ScalarFallback`.
        """
        base, variable = self._locator(field_name)
        pos = starts + base
        for tsl_type in variable:
            if tsl_type.fixed_size is not None:
                pos = pos + tsl_type.fixed_size
            elif tsl_type is STRING:
                lengths, pos = _read_varints(buf, pos, limits)
                pos = pos + lengths
            elif (isinstance(tsl_type, ListType)
                  and tsl_type.element.fixed_size is not None):
                counts, pos = _read_varints(buf, pos, limits)
                pos = pos + counts * tsl_type.element.fixed_size
            else:
                raise _ScalarFallback
        return pos

    def csr_dtype(self, field_name: str) -> np.dtype | None:
        """The numpy element dtype when the field has a CSR fast path."""
        tsl_type = self.field_type(field_name)
        if isinstance(tsl_type, ListType):
            return _NUMPY_DTYPES.get(id(tsl_type.element))
        return None

    def field_counts(self, blobs, field_name: str) -> np.ndarray:
        """List lengths for a ``List<T>`` field, one per blob.

        Decodes only each blob's varint count header — never the
        elements — which is the whole point of a batched ``degree()``.
        """
        self._require_list(field_name)
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._field_counts_vec(buf, bounds[:-1], bounds[1:],
                                              field_name)
            except _ScalarFallback:
                pass
        counts = np.empty(len(blobs), dtype=np.int64)
        offset_in = self._offset_in
        for i, blob in enumerate(blobs):
            counts[i], _ = decode_varint(blob, offset_in(blob, field_name))
        return counts

    def field_counts_packed(self, buf: np.ndarray, bounds: np.ndarray,
                            field_name: str) -> np.ndarray:
        """:meth:`field_counts` over a packed ``(buffer, bounds)`` batch."""
        return self.field_counts_spans(buf, bounds[:-1], bounds[1:],
                                       field_name)

    def field_counts_spans(self, buf: np.ndarray, starts: np.ndarray,
                           limits: np.ndarray, field_name: str) -> np.ndarray:
        """:meth:`field_counts` over arbitrary blob spans of one buffer."""
        self._require_list(field_name)
        if len(starts):
            try:
                return self._field_counts_vec(buf, starts, limits,
                                              field_name)
            except _ScalarFallback:
                pass
        return self.field_counts(_slice_blobs(buf, starts, limits),
                                 field_name)

    def _require_list(self, field_name: str) -> None:
        tsl_type = self.field_type(field_name)
        if not isinstance(tsl_type, ListType):
            raise SchemaMismatchError(
                f"{field_name!r} is {tsl_type.name}, not a List field"
            )

    def _field_counts_vec(self, buf, starts, limits,
                          field_name: str) -> np.ndarray:
        pos = self._field_positions(buf, starts, limits, field_name)
        counts, _ = _read_varints(buf, pos, limits)
        return counts

    def decode_list_csr(self, blobs, field_name: str
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Decode a ``List<primitive>`` column as ``(indptr, flat)``.

        ``flat[indptr[i]:indptr[i + 1]]`` holds blob ``i``'s elements.
        One pass collects each blob's element bytes; a single
        ``np.frombuffer`` over their concatenation replaces one
        ``struct.unpack`` per element — the same trick as the bulk
        encoder, run in reverse.  ``flat.tolist()`` of any slice equals
        the scalar ``ListType.decode`` value exactly (numpy and
        ``struct`` agree on every little-endian primitive).
        """
        dtype = self.csr_dtype(field_name)
        if dtype is None:
            raise SchemaMismatchError(
                f"{field_name!r} has no numpy-decodable element type"
            )
        itemsize = dtype.itemsize
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._decode_list_csr_vec(buf, bounds[:-1],
                                                 bounds[1:], field_name,
                                                 dtype)
            except _ScalarFallback:
                pass
        indptr = np.zeros(len(blobs) + 1, dtype=np.int64)
        parts = []
        offset_in = self._offset_in
        total = 0
        for i, blob in enumerate(blobs):
            count, start = decode_varint(blob, offset_in(blob, field_name))
            nbytes = count * itemsize
            if start + nbytes > len(blob):
                raise SchemaMismatchError(
                    f"blob too short for {field_name!r} "
                    f"({count} x {itemsize}-byte elements)"
                )
            total += count
            indptr[i + 1] = total
            if nbytes:
                parts.append(blob[start:start + nbytes])
        flat = np.frombuffer(b"".join(parts), dtype=dtype)
        return indptr, flat

    def decode_list_csr_packed(self, buf: np.ndarray, bounds: np.ndarray,
                               field_name: str
                               ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`decode_list_csr` over a packed ``(buffer, bounds)``
        batch — no per-blob ``bytes`` objects anywhere on the fast path."""
        return self.decode_list_csr_spans(buf, bounds[:-1], bounds[1:],
                                          field_name)

    def decode_list_csr_spans(self, buf: np.ndarray, starts: np.ndarray,
                              limits: np.ndarray, field_name: str
                              ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`decode_list_csr` over arbitrary blob spans of one
        buffer (e.g. live trunk-arena views)."""
        dtype = self.csr_dtype(field_name)
        if dtype is None:
            raise SchemaMismatchError(
                f"{field_name!r} has no numpy-decodable element type"
            )
        if len(starts):
            try:
                return self._decode_list_csr_vec(buf, starts, limits,
                                                 field_name, dtype)
            except _ScalarFallback:
                pass
        return self.decode_list_csr(_slice_blobs(buf, starts, limits),
                                    field_name)

    def _decode_list_csr_vec(self, buf, starts, limits, field_name: str,
                             dtype: np.dtype
                             ) -> tuple[np.ndarray, np.ndarray]:
        itemsize = dtype.itemsize
        pos = self._field_positions(buf, starts, limits, field_name)
        counts, data_start = _read_varints(buf, pos, limits)
        nbytes = counts * itemsize
        short = data_start + nbytes > limits
        if np.any(short):
            bad = int(np.flatnonzero(short)[0])
            raise SchemaMismatchError(
                f"blob too short for {field_name!r} "
                f"({int(counts[bad])} x {itemsize}-byte elements)"
            )
        indptr = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, gather_ranges(buf, data_start, nbytes).view(dtype)

    def decode_column(self, blobs, field_name: str) -> list:
        """Per-blob Python values for any field, CSR-accelerated when
        possible; elementwise equal to scalar ``decode`` per blob."""
        if self.csr_dtype(field_name) is not None:
            indptr, flat = self.decode_list_csr(blobs, field_name)
            values = flat.tolist()
            bounds = indptr.tolist()
            return [values[bounds[i]:bounds[i + 1]]
                    for i in range(len(blobs))]
        tsl_type = self.field_type(field_name)
        if len(blobs):
            try:
                buf, bounds = _pack_blobs(blobs)
                return self._decode_column_vec(buf, bounds[:-1], bounds[1:],
                                               field_name, tsl_type)
            except _ScalarFallback:
                pass
        decode = tsl_type.decode
        offset_in = self._offset_in
        return [decode(blob, offset_in(blob, field_name))[0]
                for blob in blobs]

    def decode_column_packed(self, buf: np.ndarray, bounds: np.ndarray,
                             field_name: str) -> list:
        """:meth:`decode_column` over a packed ``(buffer, bounds)`` batch."""
        return self.decode_column_spans(buf, bounds[:-1], bounds[1:],
                                        field_name)

    def decode_column_spans(self, buf: np.ndarray, starts: np.ndarray,
                            limits: np.ndarray, field_name: str) -> list:
        """:meth:`decode_column` over arbitrary blob spans of one buffer."""
        if self.csr_dtype(field_name) is not None:
            indptr, flat = self.decode_list_csr_spans(buf, starts, limits,
                                                      field_name)
            values = flat.tolist()
            cuts = indptr.tolist()
            return [values[cuts[i]:cuts[i + 1]]
                    for i in range(len(starts))]
        tsl_type = self.field_type(field_name)
        if len(starts):
            try:
                return self._decode_column_vec(buf, starts, limits,
                                               field_name, tsl_type)
            except _ScalarFallback:
                pass
        return self.decode_column(_slice_blobs(buf, starts, limits),
                                  field_name)

    def _decode_column_vec(self, buf, starts, limits, field_name: str,
                           tsl_type: TslType) -> list:
        if tsl_type is STRING:
            return self._decode_string_column(buf, starts, limits,
                                              field_name)
        dtype = _DECODE_DTYPES.get(id(tsl_type))
        if dtype is None:
            raise _ScalarFallback
        return self._decode_fixed_column(buf, starts, limits, field_name,
                                         dtype)

    def _decode_string_column(self, buf, starts, limits, field_name: str
                              ) -> list[str]:
        """One vectorized varint pass + one gather for a string column."""
        pos = self._field_positions(buf, starts, limits, field_name)
        lengths, data_start = _read_varints(buf, pos, limits)
        if np.any(data_start + lengths > limits):
            raise SchemaMismatchError("blob too short for string")
        raw = gather_ranges(buf, data_start, lengths).tobytes()
        offsets = np.zeros(len(starts) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        cuts = offsets.tolist()
        return [raw[cuts[i]:cuts[i + 1]].decode("utf-8")
                for i in range(len(starts))]

    def _decode_fixed_column(self, buf, starts, limits, field_name: str,
                             dtype: np.dtype) -> list:
        """One gather for a fixed-width primitive column."""
        pos = self._field_positions(buf, starts, limits, field_name)
        size = dtype.itemsize
        if np.any(pos + size > limits):
            raise _ScalarFallback  # scalar decode raises the canonical error
        positions = (pos[:, None] + np.arange(size)).ravel()
        return buf[positions].view(dtype).tolist()

    def string_eq_spans(self, buf: np.ndarray, starts: np.ndarray,
                        limits: np.ndarray, field_name: str,
                        value: str) -> np.ndarray:
        """``field == value`` per blob span, without building strings.

        Length mismatches are rejected by the varint headers alone; only
        equal-length candidates get a byte compare — one fancy-index
        gather for the whole batch.  Equivalent to decoding the column
        and comparing, because utf-8 encoding is injective.
        """
        if self.field_type(field_name) is not STRING:
            return np.asarray(
                [v == value
                 for v in self.decode_column_spans(buf, starts, limits,
                                                   field_name)],
                dtype=bool)
        needle = np.frombuffer(value.encode("utf-8"), dtype=np.uint8)
        try:
            pos = self._field_positions(buf, starts, limits, field_name)
            lengths, data_start = _read_varints(buf, pos, limits)
        except _ScalarFallback:
            column = self.decode_column_spans(buf, starts, limits,
                                              field_name)
            return np.asarray([v == value for v in column], dtype=bool)
        if np.any(data_start + lengths > limits):
            raise SchemaMismatchError("blob too short for string")
        hits = lengths == len(needle)
        candidates = np.flatnonzero(hits)
        if len(candidates) and len(needle):
            positions = (data_start[candidates][:, None]
                         + np.arange(len(needle))).ravel()
            raw = buf[positions].reshape(len(candidates), len(needle))
            hits[candidates] = (raw == needle).all(axis=1)
        return hits


_DECODER_CACHE: dict[int, BatchStructDecoder] = {}


def batch_decoder_for(struct_type: StructType) -> BatchStructDecoder:
    """Get (or compile) the batch decoder for a struct type (cached)."""
    decoder = _DECODER_CACHE.get(id(struct_type))
    if decoder is None or decoder.struct_type is not struct_type:
        decoder = BatchStructDecoder(struct_type)
        _DECODER_CACHE[id(struct_type)] = decoder
    return decoder
