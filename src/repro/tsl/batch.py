"""Batch blob encoding: one compiled layout plan per node type.

``GraphBuilder.finalize`` historically walked the TSL type tree once per
node — per-field dict lookups, per-element ``struct.pack`` calls.  For a
bulk load that is the dominant cost after edge ingest.  This module
compiles a :class:`~repro.tsl.types.StructType` into a *batch encoder*
once per node type; encoding then runs column-at-a-time, with a numpy
fast path for the layout that dominates graph cells: ``List<primitive>``
adjacency fields, which become one ``np.asarray(...).tobytes()`` per node
instead of one ``struct.pack`` per element.

The fast path is **bit-identical** to the scalar encoder: numpy's C casts
match the scalar casters (``int()`` truncation toward zero, IEEE float
narrowing, bool widening), and any value numpy cannot convert falls back
to the scalar element encoder so error behaviour matches too.  The
equivalence is test-pinned by a hypothesis suite.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from ..utils.varint import encode_varint
from .types import (
    BOOL,
    BYTE,
    DOUBLE,
    INT,
    LONG,
    SHORT,
    ListType,
    StructType,
    TslType,
)

# Primitive element types whose scalar struct codes have exact numpy
# dtype twins (little-endian, no padding) *including error behaviour*:
# numpy raises on out-of-range integers exactly where struct.pack does.
# FLOAT is deliberately absent — float64→float32 overflow becomes a
# silent inf under numpy where ``struct.pack('<f')`` raises.
_NUMPY_DTYPES = {
    id(BYTE): np.dtype("u1"),
    id(BOOL): np.dtype("?"),
    id(SHORT): np.dtype("<i2"),
    id(INT): np.dtype("<i4"),
    id(LONG): np.dtype("<i8"),
    id(DOUBLE): np.dtype("<f8"),
}

# Lengths below 128 encode as a single varint byte; precomputing them
# skips an encode_varint call per list in the hot column loop.
_VARINT_SMALL = [encode_varint(i) for i in range(128)]


def encode_varint_small(n: int) -> bytes:
    """``encode_varint`` with the single-byte range precomputed."""
    return _VARINT_SMALL[n] if n < 128 else encode_varint(n)


class _FieldPlan:
    """Encodes one field for every record in a batch (a column)."""

    def __init__(self, name: str, tsl_type: TslType):
        self.name = name
        self.tsl_type = tsl_type
        self._dtype = None
        if isinstance(tsl_type, ListType):
            self._dtype = _NUMPY_DTYPES.get(id(tsl_type.element))

    def encode_column(self, values: list) -> list[bytes]:
        if self._dtype is None:
            encode = self.tsl_type.encode
            return [encode(value) for value in values]
        column = self._encode_column_flat(values)
        if column is not None:
            return column
        out = []
        dtype = self._dtype
        scalar_encode = self.tsl_type.encode
        for value in values:
            if type(value) in (list, tuple):
                try:
                    array = np.asarray(value, dtype=dtype)
                except (ValueError, TypeError, OverflowError):
                    # Let the scalar path produce the canonical result
                    # (or the canonical SchemaMismatchError).
                    out.append(scalar_encode(value))
                    continue
                if array.ndim != 1:
                    # Nested sequences: the scalar element caster decides
                    # whether that is encodable (it usually raises).
                    out.append(scalar_encode(value))
                    continue
                out.append(encode_varint(len(value)) + array.tobytes())
            else:
                out.append(scalar_encode(value))
        return out

    def _encode_column_flat(self, values: list) -> list[bytes] | None:
        """Whole-column conversion: one numpy cast for every element.

        Concatenates all lists, converts once, then slices the resulting
        byte blob per record — byte-for-byte the same output as one
        conversion per list.  Returns ``None`` (caller falls back to the
        per-value path, which in turn falls back per value to the scalar
        encoder) whenever anything is irregular: a non-list value, a
        nested sequence (it survives one level of chaining but yields a
        2-D array), or an element the dtype rejects.
        """
        if not all(type(value) in (list, tuple) for value in values):
            return None
        lengths = [len(value) for value in values]
        try:
            flat = np.asarray(list(chain.from_iterable(values)),
                              dtype=self._dtype)
        except (ValueError, TypeError, OverflowError):
            return None
        if flat.ndim != 1 or len(flat) != sum(lengths):
            return None
        blob = flat.tobytes()
        itemsize = self._dtype.itemsize
        small = _VARINT_SMALL
        out = []
        position = 0
        for length in lengths:
            nbytes = length * itemsize
            prefix = small[length] if length < 128 else encode_varint(length)
            out.append(prefix + blob[position:position + nbytes])
            position += nbytes
        return out


class BatchStructEncoder:
    """Column-at-a-time encoder for one struct type."""

    def __init__(self, struct_type: StructType):
        self.struct_type = struct_type
        self._plans = [
            _FieldPlan(name, tsl_type)
            for name, tsl_type in struct_type.fields
        ]

    def encode_many(self, records: list[dict]) -> list[bytes]:
        """Encode a batch of records; ≡ ``[struct.encode(r) for r in records]``.

        Missing fields take the field default, exactly like the scalar
        encoder; unknown fields raise through the scalar validator.
        """
        if not records:
            return []
        known = {plan.name for plan in self._plans}
        for record in records:
            unknown = set(record) - known
            if unknown:
                # Defer to the scalar encoder for its canonical error.
                return [self.struct_type.encode(r) for r in records]
        columns = []
        for plan in self._plans:
            default = plan.tsl_type.default
            column = [record.get(plan.name, _MISSING) for record in records]
            for i, value in enumerate(column):
                if value is _MISSING:
                    column[i] = default()
            columns.append(plan.encode_column(column))
        return [b"".join(parts) for parts in zip(*columns)]


_MISSING = object()

_ENCODER_CACHE: dict[int, BatchStructEncoder] = {}


def batch_encoder_for(struct_type: StructType) -> BatchStructEncoder:
    """Get (or compile) the batch encoder for a struct type.

    Cached per StructType instance — this is the "compile the layout once
    per node type, not per node" half of the bulk loading path.
    """
    encoder = _ENCODER_CACHE.get(id(struct_type))
    if encoder is None or encoder.struct_type is not struct_type:
        encoder = BatchStructEncoder(struct_type)
        _ENCODER_CACHE[id(struct_type)] = encoder
    return encoder
