"""Abstract syntax tree for parsed TSL scripts."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Attribute:
    """One ``[Key: Value, Key2: Value2]`` construct.

    The paper uses attributes to annotate cells (``[CellType: NodeCell]``)
    and edge fields (``[EdgeType: SimpleEdge, ReferencedCell: Actor]``).
    """

    entries: tuple[tuple[str, str], ...]

    def get(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.entries:
            if k == key:
                return v
        return default

    def __contains__(self, key: str) -> bool:
        return any(k == key for k, _ in self.entries)


def _merged(attributes: tuple[Attribute, ...]) -> dict[str, str]:
    out: dict[str, str] = {}
    for attr in attributes:
        out.update(attr.entries)
    return out


@dataclass(frozen=True)
class TypeExpr:
    """A (possibly generic) type reference, e.g. ``List<long>``."""

    name: str
    args: tuple["TypeExpr", ...] = ()

    def __str__(self) -> str:
        if self.args:
            inner = ", ".join(str(a) for a in self.args)
            return f"{self.name}<{inner}>"
        return self.name


@dataclass(frozen=True)
class FieldDecl:
    """One field inside a struct or cell struct."""

    name: str
    type_expr: TypeExpr
    attributes: tuple[Attribute, ...] = ()

    @property
    def attribute_map(self) -> dict[str, str]:
        return _merged(self.attributes)

    @property
    def edge_type(self) -> str | None:
        """SimpleEdge / StructEdge / HyperEdge, if this field holds edges."""
        return self.attribute_map.get("EdgeType")

    @property
    def referenced_cell(self) -> str | None:
        return self.attribute_map.get("ReferencedCell")


@dataclass(frozen=True)
class StructDecl:
    """A ``struct`` or ``cell struct`` declaration."""

    name: str
    fields: tuple[FieldDecl, ...]
    is_cell: bool
    attributes: tuple[Attribute, ...] = ()

    @property
    def attribute_map(self) -> dict[str, str]:
        return _merged(self.attributes)


@dataclass(frozen=True)
class ProtocolDecl:
    """A ``protocol`` declaration (Figure 5).

    ``kind`` is "Syn" or "Asyn"; ``request``/``response`` name message
    struct types, or None for ``void``.
    """

    name: str
    kind: str
    request: str | None
    response: str | None
    attributes: tuple[Attribute, ...] = ()


@dataclass(frozen=True)
class Script:
    """A whole parsed TSL script."""

    structs: tuple[StructDecl, ...] = field(default=())
    protocols: tuple[ProtocolDecl, ...] = field(default=())

    def struct(self, name: str) -> StructDecl:
        for decl in self.structs:
            if decl.name == name:
                return decl
        raise KeyError(name)
