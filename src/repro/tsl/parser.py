"""Recursive-descent parser for TSL.

Grammar (attributes may precede any declaration or field)::

    script     := (attribute* declaration)*
    declaration:= cell_struct | struct | protocol
    cell_struct:= "cell" "struct" IDENT "{" field* "}"
    struct     := "struct" IDENT "{" field* "}"
    field      := attribute* type IDENT ";"
    type       := IDENT ("<" type ("," type)* ">")?
    protocol   := "protocol" IDENT "{" setting* "}"
    setting    := IDENT ":" IDENT ";"
    attribute  := "[" IDENT (":" value)? ("," IDENT (":" value)?)* "]"
"""

from __future__ import annotations

from ..errors import TslSyntaxError
from .ast import Attribute, FieldDecl, ProtocolDecl, Script, StructDecl, TypeExpr
from .lexer import Token, tokenize

_PROTOCOL_SETTINGS = {"Type", "Request", "Response"}
_PROTOCOL_KINDS = {"Syn", "Asyn"}


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            last = self._tokens[-1] if self._tokens else None
            line = last.line if last else 0
            raise TslSyntaxError("unexpected end of script", line, 0)
        self._pos += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise TslSyntaxError(
                f"expected {wanted}, found {token.text!r}",
                token.line, token.column,
            )
        return token

    def _at(self, kind: str, text: str | None = None) -> bool:
        token = self._peek()
        if token is None:
            return False
        return token.kind == kind and (text is None or token.text == text)

    # -- grammar -----------------------------------------------------------

    def parse(self) -> Script:
        structs: list[StructDecl] = []
        protocols: list[ProtocolDecl] = []
        while self._peek() is not None:
            attributes = self._parse_attributes()
            token = self._peek()
            assert token is not None
            if token.kind != "KEYWORD":
                raise TslSyntaxError(
                    f"expected declaration, found {token.text!r}",
                    token.line, token.column,
                )
            if token.text == "protocol":
                protocols.append(self._parse_protocol(attributes))
            else:
                structs.append(self._parse_struct(attributes))
        return Script(tuple(structs), tuple(protocols))

    def _parse_attributes(self) -> tuple[Attribute, ...]:
        attributes: list[Attribute] = []
        while self._at("LBRACKET"):
            self._next()
            entries: list[tuple[str, str]] = []
            while not self._at("RBRACKET"):
                key = self._expect("IDENT").text
                value = ""
                if self._at("COLON"):
                    self._next()
                    value = self._next().text
                entries.append((key, value))
                if self._at("COMMA"):
                    self._next()
            self._expect("RBRACKET")
            attributes.append(Attribute(tuple(entries)))
        return tuple(attributes)

    def _parse_struct(self, attributes: tuple[Attribute, ...]) -> StructDecl:
        is_cell = False
        if self._at("KEYWORD", "cell"):
            self._next()
            is_cell = True
        self._expect("KEYWORD", "struct")
        name = self._expect("IDENT").text
        self._expect("LBRACE")
        fields: list[FieldDecl] = []
        while not self._at("RBRACE"):
            fields.append(self._parse_field())
        self._expect("RBRACE")
        self._check_unique(name, [f.name for f in fields])
        return StructDecl(name, tuple(fields), is_cell, attributes)

    def _parse_field(self) -> FieldDecl:
        attributes = self._parse_attributes()
        type_expr = self._parse_type()
        name = self._expect("IDENT").text
        self._expect("SEMI")
        return FieldDecl(name, type_expr, attributes)

    def _parse_type(self) -> TypeExpr:
        name = self._expect("IDENT").text
        args: list[TypeExpr] = []
        if self._at("LANGLE"):
            self._next()
            args.append(self._parse_type())
            while self._at("COMMA"):
                self._next()
                args.append(self._parse_type())
            self._expect("RANGLE")
        return TypeExpr(name, tuple(args))

    def _parse_protocol(
        self, attributes: tuple[Attribute, ...]
    ) -> ProtocolDecl:
        self._expect("KEYWORD", "protocol")
        name = self._expect("IDENT").text
        self._expect("LBRACE")
        settings: dict[str, str] = {}
        while not self._at("RBRACE"):
            key_token = self._expect("IDENT")
            if key_token.text not in _PROTOCOL_SETTINGS:
                raise TslSyntaxError(
                    f"unknown protocol setting {key_token.text!r}",
                    key_token.line, key_token.column,
                )
            self._expect("COLON")
            value = self._expect("IDENT").text
            self._expect("SEMI")
            if key_token.text in settings:
                raise TslSyntaxError(
                    f"duplicate protocol setting {key_token.text!r}",
                    key_token.line, key_token.column,
                )
            settings[key_token.text] = value
        end = self._expect("RBRACE")
        kind = settings.get("Type", "Syn")
        if kind not in _PROTOCOL_KINDS:
            raise TslSyntaxError(
                f"protocol Type must be Syn or Asyn, got {kind!r}",
                end.line, end.column,
            )
        request = settings.get("Request")
        response = settings.get("Response")
        if request == "void":
            request = None
        if response == "void":
            response = None
        return ProtocolDecl(name, kind, request, response, attributes)

    @staticmethod
    def _check_unique(struct_name: str, names: list[str]) -> None:
        seen: set[str] = set()
        for field_name in names:
            if field_name in seen:
                raise TslSyntaxError(
                    f"duplicate field {field_name!r} in struct {struct_name}"
                )
            seen.add(field_name)


def parse_tsl(source: str) -> Script:
    """Parse a TSL script into a :class:`Script` AST."""
    return _Parser(tokenize(source)).parse()
