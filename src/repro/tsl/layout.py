"""Per-cell adjacency layouts: degree-aware codecs behind one header.

Trinity's memory-model argument (Section 5.4) prices adjacency at eight
bytes per neighbor.  On a power-law graph that is the wrong constant for
both tails: degree-1 vertices pay full fixed-width freight for one id,
and hubs carry 10^4+ neighbors whose ids fit in two or three bytes each.
Following the adaptive-storage literature (PAPERS.md), every adjacency
list carries a two-bit *layout tag* in its count header —
``header = (count << 2) | tag`` — and a :class:`LayoutPolicy` picks the
cheapest eligible encoding at encode time from degree and id-span stats:

* ``LAYOUT_RAW`` (tag 0) — the original packed little-endian int64
  elements.  Always eligible; the empty list still encodes as one zero
  byte, exactly as before.
* ``LAYOUT_DELTA_VARINT`` (tag 1) — a varint byte-count prefix followed
  by one zigzag LEB128 varint per neighbor: the first is the absolute
  id, the rest are deltas from their predecessor.  Zigzag (not
  unsigned) deltas because real loader output is arrival-ordered, not
  sorted; eligibility only requires every id to be non-negative, which
  keeps all deltas inside int64.  Neighbor order is preserved exactly.
* ``LAYOUT_BITMAP`` (tag 2) — a varint base id, a varint byte count,
  then a dense LSB-first bitset over ``[base, base + 8 * nbytes)``.
  Eligible only for strictly increasing non-negative lists (a bitmap
  cannot represent order or duplicates); decode yields ascending ids,
  which for an eligible list is the original order.

Tag 3 is reserved and decodes to a :class:`SchemaMismatchError`.

Selection is deterministic and *shared*: the scalar encoder is a
single-segment call into the same vectorized segment encoder the bulk
loader uses, so ``cross_check=True`` holds bit-identically across every
layout mix by construction.  Ties in exact encoded size prefer the lower
tag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SchemaMismatchError
from ..utils.arrays import range_indices
from ..utils.varint import (
    decode_varint,
    encode_varint,
    encode_varints,
    varint_lengths,
)

LAYOUT_RAW = 0
LAYOUT_DELTA_VARINT = 1
LAYOUT_BITMAP = 2

LAYOUT_NAMES = {
    LAYOUT_RAW: "raw",
    LAYOUT_DELTA_VARINT: "delta_varint",
    LAYOUT_BITMAP: "bitmap",
}

_INT64 = np.dtype("<i8")
_SIZE_INF = np.iinfo(np.int64).max


@dataclass(frozen=True)
class LayoutPolicy:
    """Degree/span-driven layout selection, exact-size and deterministic.

    Lists shorter than every enabled threshold short-circuit to raw
    without touching numpy; everything else gets the exact encoded
    payload size of each eligible layout computed and the smallest one
    wins (ties to the lower tag, so raw beats an equal-size codec).
    """

    delta_min_degree: int = 8
    """Lists shorter than this never consider the delta-varint layout
    (the codec's byte-count prefix and per-element varint overhead only
    pay off once a list has some length)."""

    bitmap_min_degree: int = 32
    """Lists shorter than this never consider the bitmap layout (a
    sparse bitset over a wide id window is easily *larger* than raw;
    density only wins for genuinely heavy neighborhoods)."""

    allow_delta: bool = True
    allow_bitmap: bool = True

    def __post_init__(self) -> None:
        if self.delta_min_degree < 1:
            raise ValueError("delta_min_degree must be >= 1")
        if self.bitmap_min_degree < 1:
            raise ValueError("bitmap_min_degree must be >= 1")

    @classmethod
    def adaptive(cls) -> "LayoutPolicy":
        return cls()

    @classmethod
    def raw_only(cls) -> "LayoutPolicy":
        """Everything stays ``LAYOUT_RAW`` — the pre-layout wire format
        modulo the two tag bits in the header."""
        return cls(allow_delta=False, allow_bitmap=False)

    @property
    def min_consider_degree(self) -> int:
        """Below this degree no non-raw layout is ever considered."""
        candidates = []
        if self.allow_delta:
            candidates.append(self.delta_min_degree)
        if self.allow_bitmap:
            candidates.append(self.bitmap_min_degree)
        return min(candidates) if candidates else _SIZE_INF

    def choose(self, values) -> int:
        """Layout tag for one neighbor list (a list/array of ids)."""
        count = len(values)
        if count < self.min_consider_degree:
            return LAYOUT_RAW
        flat = np.ascontiguousarray(values, dtype=np.int64)
        tags, _ = _segment_stats(
            flat, np.array([0], dtype=np.int64),
            np.array([count], dtype=np.int64), self)
        return int(tags[0])


DEFAULT_LAYOUT_POLICY = LayoutPolicy()
RAW_ONLY_POLICY = LayoutPolicy.raw_only()

_POLICY_PRESETS = {
    "adaptive": DEFAULT_LAYOUT_POLICY,
    "raw": RAW_ONLY_POLICY,
}


def resolve_layout_policy(value) -> "LayoutPolicy | None":
    """Normalise a config knob (None | str preset | LayoutPolicy)."""
    if value is None or isinstance(value, LayoutPolicy):
        return value
    try:
        return _POLICY_PRESETS[value]
    except (KeyError, TypeError):
        raise ValueError(
            f"layout_policy must be None, 'adaptive', 'raw', or a "
            f"LayoutPolicy, got {value!r}"
        ) from None


def install_layout_policy(struct_type, policy) -> None:
    """Install a resolved policy onto a schema's adjacency types.

    Walks the struct (and any embedded structs/lists) and repoints each
    :class:`~repro.tsl.types.AdjacencyListType`'s mutable ``policy``.
    ``None`` leaves the schema's current policies untouched, so a cloud
    without an explicit ``layout_policy`` knob never overrides one set
    programmatically on the type.
    """
    if policy is None:
        return
    from .types import AdjacencyListType, ListType, StructType
    seen = set()

    def walk(tsl_type) -> None:
        if id(tsl_type) in seen:
            return
        seen.add(id(tsl_type))
        if isinstance(tsl_type, AdjacencyListType):
            tsl_type.policy = policy
        elif isinstance(tsl_type, ListType):
            walk(tsl_type.element)
        elif isinstance(tsl_type, StructType):
            for _, field_type in tsl_type.fields:
                walk(field_type)

    walk(struct_type)


class _SegmentStats:
    """Per-segment codec stats shared by the chooser and the encoder."""

    __slots__ = ("counts", "zigzag", "delta_nbytes", "firsts",
                 "bitmap_nbytes")

    def __init__(self, counts, zigzag, delta_nbytes, firsts, bitmap_nbytes):
        self.counts = counts
        self.zigzag = zigzag              # uint64 per element, segment-local
        self.delta_nbytes = delta_nbytes  # varint-stream bytes per segment
        self.firsts = firsts
        self.bitmap_nbytes = bitmap_nbytes


def _segment_stats(flat: np.ndarray, starts: np.ndarray, ends: np.ndarray,
                   policy: LayoutPolicy
                   ) -> tuple[np.ndarray, _SegmentStats | None]:
    """Choose a layout tag per segment ``flat[starts[i]:ends[i])``.

    Segments may be non-contiguous subsets of ``flat`` (the parallel
    bulk loader restricts a shared group); every per-segment statistic
    is a prefix-sum difference, so gaps between segments cost nothing.
    """
    counts = ends - starts
    n = len(counts)
    tags = np.zeros(n, dtype=np.int64)
    if (not n or not len(flat)
            or int(counts.max()) < policy.min_consider_degree):
        return tags, None
    m = len(flat)
    nz_starts = starts[counts > 0]
    # Per-element delta (absolute value at each segment start) and its
    # zigzag code.  Elements of raw-bound segments may wrap in int64 —
    # harmless, their stats are masked off below.
    deltas = np.empty(m, dtype=np.int64)
    deltas[0] = 0
    if m > 1:
        np.subtract(flat[1:], flat[:-1], out=deltas[1:])
    deltas[nz_starts] = flat[nz_starts]
    zigzag = ((deltas << 1) ^ (deltas >> 63)).view(np.uint64)
    byte_lens = varint_lengths(zigzag)
    cum_lens = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(byte_lens, out=cum_lens[1:])
    delta_nbytes = cum_lens[ends] - cum_lens[starts]
    cum_neg = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(flat < 0, out=cum_neg[1:])
    seg_negatives = cum_neg[ends] - cum_neg[starts]
    nonincreasing = np.zeros(m, dtype=np.int64)
    if m > 1:
        nonincreasing[1:] = flat[1:] <= flat[:-1]
    nonincreasing[nz_starts] = 0
    cum_viol = np.zeros(m + 1, dtype=np.int64)
    np.cumsum(nonincreasing, out=cum_viol[1:])
    seg_violations = cum_viol[ends] - cum_viol[starts]
    firsts = np.zeros(n, dtype=np.int64)
    lasts = np.zeros(n, dtype=np.int64)
    nonempty = counts > 0
    firsts[nonempty] = flat[starts[nonempty]]
    lasts[nonempty] = flat[ends[nonempty] - 1]

    raw_size = counts * 8
    delta_size = np.where(
        (counts >= policy.delta_min_degree) & (seg_negatives == 0)
        if policy.allow_delta else np.zeros(n, dtype=bool),
        varint_lengths(delta_nbytes.astype(np.uint64)) + delta_nbytes,
        _SIZE_INF,
    )
    span = lasts - firsts + 1  # wraps negative on overflow -> ineligible
    bitmap_nbytes = (span + 7) >> 3
    bitmap_ok = (nonempty & (counts >= policy.bitmap_min_degree)
                 & (seg_violations == 0) & (firsts >= 0) & (span > 0)
                 if policy.allow_bitmap else np.zeros(n, dtype=bool))
    bitmap_size = np.where(
        bitmap_ok,
        varint_lengths(firsts.astype(np.uint64))
        + varint_lengths(bitmap_nbytes.astype(np.uint64)) + bitmap_nbytes,
        _SIZE_INF,
    )
    tags = np.argmin(
        np.stack([raw_size, delta_size, bitmap_size]), axis=0
    ).astype(np.int64)
    return tags, _SegmentStats(counts, zigzag, delta_nbytes, firsts,
                               bitmap_nbytes)


def encode_adjacency_segments(flat: np.ndarray, starts: np.ndarray,
                              ends: np.ndarray,
                              policy: LayoutPolicy | None = None
                              ) -> list[bytes]:
    """Encode many neighbor lists at once, one adjacency blob each.

    ``flat[starts[i]:ends[i])`` is list ``i``; the segments may share
    one buffer non-contiguously.  This is the single source of truth for
    layout selection *and* payload bytes: the scalar type encoder calls
    it with one segment, so both paths are bit-identical by construction.
    """
    policy = policy or DEFAULT_LAYOUT_POLICY
    flat = np.ascontiguousarray(flat, dtype=_INT64)
    starts = np.asarray(starts, dtype=np.int64)
    ends = np.asarray(ends, dtype=np.int64)
    tags, stats = _segment_stats(flat, starts, ends, policy)
    counts = ends - starts
    headers, header_lens = encode_varints(
        ((counts << 2) | tags).astype(np.uint64))
    header_bytes = headers.tobytes()
    header_cuts = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(header_lens, out=header_cuts[1:])
    hc = header_cuts.tolist()
    blobs: list[bytes | None] = [None] * len(counts)

    raw_idx = np.flatnonzero(tags == LAYOUT_RAW)
    if len(raw_idx):
        raw_blob = flat.tobytes()
        for i, s, e in zip(raw_idx.tolist(), starts[raw_idx].tolist(),
                           ends[raw_idx].tolist()):
            blobs[i] = header_bytes[hc[i]:hc[i + 1]] + raw_blob[8 * s:8 * e]

    delta_idx = np.flatnonzero(tags == LAYOUT_DELTA_VARINT)
    if len(delta_idx):
        elements = range_indices(starts[delta_idx], counts[delta_idx])
        stream, _ = encode_varints(stats.zigzag[elements])
        stream_bytes = stream.tobytes()
        nbytes = stats.delta_nbytes[delta_idx]
        cuts = np.zeros(len(delta_idx) + 1, dtype=np.int64)
        np.cumsum(nbytes, out=cuts[1:])
        sc = cuts.tolist()
        for j, i in enumerate(delta_idx.tolist()):
            payload = stream_bytes[sc[j]:sc[j + 1]]
            blobs[i] = (header_bytes[hc[i]:hc[i + 1]]
                        + encode_varint(len(payload)) + payload)

    bitmap_idx = np.flatnonzero(tags == LAYOUT_BITMAP)
    if len(bitmap_idx):
        nbytes = stats.bitmap_nbytes[bitmap_idx]
        byte_cuts = np.zeros(len(bitmap_idx) + 1, dtype=np.int64)
        np.cumsum(nbytes, out=byte_cuts[1:])
        elements = range_indices(starts[bitmap_idx], counts[bitmap_idx])
        relative = (flat[elements]
                    - np.repeat(stats.firsts[bitmap_idx],
                                counts[bitmap_idx]))
        bit_positions = relative + np.repeat(8 * byte_cuts[:-1],
                                             counts[bitmap_idx])
        bits = np.zeros(int(byte_cuts[-1]) * 8, dtype=np.uint8)
        bits[bit_positions] = 1
        packed = np.packbits(bits, bitorder="little").tobytes()
        bc = byte_cuts.tolist()
        bases = stats.firsts[bitmap_idx].tolist()
        nb = nbytes.tolist()
        for j, i in enumerate(bitmap_idx.tolist()):
            blobs[i] = (header_bytes[hc[i]:hc[i + 1]]
                        + encode_varint(bases[j]) + encode_varint(nb[j])
                        + packed[bc[j]:bc[j + 1]])
    return blobs


def encode_adjacency(values: np.ndarray,
                     policy: LayoutPolicy | None = None) -> bytes:
    """Encode one neighbor list (an int64 array) with policy selection.

    Short lists — the overwhelming majority on a power-law graph —
    short-circuit to the raw encoding without per-list numpy overhead;
    the segment encoder would have chosen raw for them anyway.
    """
    policy = policy or DEFAULT_LAYOUT_POLICY
    count = len(values)
    if count < policy.min_consider_degree:
        arr = np.ascontiguousarray(values, dtype=_INT64)
        return encode_varint(count << 2) + arr.tobytes()
    return encode_adjacency_segments(
        values, np.array([0], dtype=np.int64),
        np.array([count], dtype=np.int64), policy)[0]


def encode_adjacency_with_tag(values, tag: int) -> bytes | None:
    """Encode one list under a *forced* layout; ``None`` if ineligible.

    Structural eligibility only (no degree thresholds): the accessor's
    mutation path uses this to preserve a cell's stored layout across
    appends and element writes — which is exactly how observed degree
    drifts across a policy boundary without the bytes following, the
    drift the re-encoder daemon exists to repair.
    """
    arr = np.ascontiguousarray(list(values), dtype=_INT64)
    count = len(arr)
    header = encode_varint((count << 2) | tag)
    if tag == LAYOUT_RAW:
        return header + arr.tobytes()
    if tag == LAYOUT_DELTA_VARINT:
        if count and int(arr.min()) < 0:
            return None
        deltas = np.empty(count, dtype=np.int64)
        if count:
            deltas[0] = arr[0]
            np.subtract(arr[1:], arr[:-1], out=deltas[1:])
        zigzag = ((deltas << 1) ^ (deltas >> 63)).view(np.uint64)
        stream, _ = encode_varints(zigzag)
        payload = stream.tobytes()
        return header + encode_varint(len(payload)) + payload
    if tag == LAYOUT_BITMAP:
        if not count or int(arr[0]) < 0:
            return None
        if count > 1 and not bool(np.all(np.diff(arr) > 0)):
            return None
        base = int(arr[0])
        span = int(arr[-1]) - base + 1
        nbytes = (span + 7) // 8
        bits = np.zeros(nbytes * 8, dtype=np.uint8)
        bits[arr - base] = 1
        payload = np.packbits(bits, bitorder="little").tobytes()
        return header + encode_varint(base) + encode_varint(nbytes) + payload
    raise ValueError(f"unknown adjacency layout tag {tag}")


# ---------------------------------------------------------------------------
# Scalar payload decoders (the canonical-error reference implementations)
# ---------------------------------------------------------------------------


def decode_delta_payload(buf, offset: int, count: int) -> tuple[list, int]:
    """Decode a ``LAYOUT_DELTA_VARINT`` payload into a Python list."""
    nbytes, pos = decode_varint(buf, offset)
    end = pos + nbytes
    if end > len(buf):
        raise SchemaMismatchError("blob too short for adjacency delta payload")
    values = []
    previous = 0
    for index in range(count):
        code = 0
        shift = 0
        while True:
            if pos >= end or shift > 63:
                raise SchemaMismatchError("corrupt adjacency delta payload")
            byte = buf[pos]
            pos += 1
            code |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
        delta = (code >> 1) ^ -(code & 1)
        previous = delta if index == 0 else previous + delta
        if not -(2 ** 63) <= previous < 2 ** 63:
            raise SchemaMismatchError(
                "adjacency delta payload overflows int64")
        values.append(previous)
    if pos != end:
        raise SchemaMismatchError("corrupt adjacency delta payload")
    return values, end


def decode_bitmap_payload(buf, offset: int, count: int) -> tuple[list, int]:
    """Decode a ``LAYOUT_BITMAP`` payload into an ascending Python list."""
    base, pos = decode_varint(buf, offset)
    nbytes, pos = decode_varint(buf, pos)
    end = pos + nbytes
    if end > len(buf):
        raise SchemaMismatchError(
            "blob too short for adjacency bitmap payload")
    values = []
    for byte_index in range(nbytes):
        byte = buf[pos + byte_index]
        if not byte:
            continue
        origin = base + 8 * byte_index
        for bit in range(8):
            if byte >> bit & 1:
                values.append(origin + bit)
    if len(values) != count:
        raise SchemaMismatchError(
            f"adjacency bitmap popcount {len(values)} != header count {count}"
        )
    return values, end
