"""TSL runtime type system: blob layouts for every TSL type.

A TSL struct is stored as a flat blob with fields laid out in declaration
order — no per-field framing, no padding, no runtime-object headers (the
paper's motivation in Section 4.3: blobs are "compact, economical, with
zero serialization and deserialization overhead").  Fixed-size fields sit
at statically computable offsets; variable-size fields (strings, lists,
nested variable structs) are located by skipping over their predecessors,
which the cell accessor memoizes.

Each type implements:

* ``fixed_size`` — byte width, or ``None`` for variable-size types,
* ``encode(value)`` — value → bytes,
* ``decode(buf, offset)`` — ``(value, next_offset)``,
* ``skip(buf, offset)`` — next_offset without materialising the value,
* ``write_fixed(buf, offset, value)`` — in-place overwrite (fixed types
  only; this is what makes zero-copy field assignment possible),
* ``default()`` — zero value used when encoding a partial record.
"""

from __future__ import annotations

import struct

from ..errors import SchemaMismatchError, TslTypeError
from ..utils.varint import decode_varint, encode_varint


class TslType:
    """Base class for TSL runtime types."""

    name: str = "?"
    fixed_size: int | None = None

    def encode(self, value) -> bytes:
        raise NotImplementedError

    def decode(self, buf, offset: int):
        raise NotImplementedError

    def skip(self, buf, offset: int) -> int:
        value_size = self.fixed_size
        if value_size is None:
            raise NotImplementedError
        return offset + value_size

    def write_fixed(self, buf, offset: int, value) -> None:
        raise TslTypeError(f"{self.name} is not fixed-size")

    def default(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<tsl {self.name}>"


class PrimitiveType(TslType):
    """A fixed-width numeric/boolean primitive backed by ``struct``."""

    def __init__(self, name: str, fmt: str, default_value, caster):
        self.name = name
        self._struct = struct.Struct("<" + fmt)
        self.fixed_size = self._struct.size
        self._default = default_value
        self._caster = caster

    def encode(self, value) -> bytes:
        try:
            return self._struct.pack(self._caster(value))
        except (struct.error, TypeError, ValueError) as exc:
            raise SchemaMismatchError(
                f"cannot encode {value!r} as {self.name}: {exc}"
            ) from None

    def decode(self, buf, offset: int):
        try:
            (value,) = self._struct.unpack_from(buf, offset)
        except struct.error as exc:
            raise SchemaMismatchError(f"blob too short for {self.name}: {exc}")
        return value, offset + self.fixed_size

    def write_fixed(self, buf, offset: int, value) -> None:
        try:
            self._struct.pack_into(buf, offset, self._caster(value))
        except (struct.error, TypeError, ValueError) as exc:
            raise SchemaMismatchError(
                f"cannot write {value!r} as {self.name}: {exc}"
            ) from None

    def default(self):
        return self._default


BYTE = PrimitiveType("byte", "B", 0, int)
BOOL = PrimitiveType("bool", "?", False, bool)
SHORT = PrimitiveType("short", "h", 0, int)
INT = PrimitiveType("int", "i", 0, int)
LONG = PrimitiveType("long", "q", 0, int)
FLOAT = PrimitiveType("float", "f", 0.0, float)
DOUBLE = PrimitiveType("double", "d", 0.0, float)


class StringType(TslType):
    """UTF-8 string with varint length prefix."""

    name = "string"
    fixed_size = None

    def encode(self, value) -> bytes:
        if not isinstance(value, str):
            raise SchemaMismatchError(f"expected str, got {type(value).__name__}")
        raw = value.encode("utf-8")
        return encode_varint(len(raw)) + raw

    def decode(self, buf, offset: int):
        length, offset = decode_varint(buf, offset)
        end = offset + length
        if end > len(buf):
            raise SchemaMismatchError("blob too short for string")
        return bytes(buf[offset:end]).decode("utf-8"), end

    def skip(self, buf, offset: int) -> int:
        length, offset = decode_varint(buf, offset)
        return offset + length

    def default(self) -> str:
        return ""


STRING = StringType()


class ListType(TslType):
    """``List<T>``: varint count followed by the packed elements."""

    fixed_size = None

    def __init__(self, element: TslType):
        self.element = element
        self.name = f"List<{element.name}>"

    def encode(self, value) -> bytes:
        if not isinstance(value, (list, tuple)):
            raise SchemaMismatchError(
                f"expected list for {self.name}, got {type(value).__name__}"
            )
        parts = [encode_varint(len(value))]
        parts.extend(self.element.encode(item) for item in value)
        return b"".join(parts)

    def decode(self, buf, offset: int):
        count, offset = decode_varint(buf, offset)
        items = []
        for _ in range(count):
            item, offset = self.element.decode(buf, offset)
            items.append(item)
        return items, offset

    def skip(self, buf, offset: int) -> int:
        count, offset = decode_varint(buf, offset)
        element_size = self.element.fixed_size
        if element_size is not None:
            return offset + count * element_size
        for _ in range(count):
            offset = self.element.skip(buf, offset)
        return offset

    def decode_count(self, buf, offset: int) -> tuple[int, int]:
        """``(element_count, payload_offset)`` from the header alone."""
        return decode_varint(buf, offset)

    def default(self) -> list:
        return []


class AdjacencyListType(ListType):
    """``List<long>`` adjacency with a per-cell layout dimension.

    The wire format replaces the plain varint count header with
    ``varint((count << 2) | tag)`` — two tag bits select the payload
    codec (see :mod:`repro.tsl.layout`) and the count rides in the upper
    bits, so an empty list still costs exactly one zero byte.  The TSL
    compiler applies this type only to ``[EdgeType: ...]``-annotated
    ``List<long>`` fields; protocol messages and other plain lists keep
    the original format.

    ``policy`` is mutable on purpose: ``MemoryParams.layout_policy``
    is installed onto a schema's adjacency types when a builder or graph
    binds that schema to a cloud.
    """

    def __init__(self, element: TslType = LONG, policy=None):
        if element is not LONG:
            raise TslTypeError(
                "adjacency lists require long elements, "
                f"got {element.name}"
            )
        super().__init__(element)
        if policy is None:
            from .layout import DEFAULT_LAYOUT_POLICY
            policy = DEFAULT_LAYOUT_POLICY
        self.policy = policy

    def encode(self, value) -> bytes:
        from . import layout
        if not isinstance(value, (list, tuple)):
            raise SchemaMismatchError(
                f"expected list for {self.name}, got {type(value).__name__}"
            )
        # Validate elementwise through the scalar LONG encoder first so
        # bad values raise the canonical error; its output bytes are the
        # canonical int64 images the codecs run on.
        parts = [self.element.encode(item) for item in value]
        if not parts:
            return encode_varint(0)  # (0 << 2) | LAYOUT_RAW
        import numpy as np
        ints = np.frombuffer(b"".join(parts), dtype="<i8")
        return layout.encode_adjacency(ints, self.policy)

    def decode(self, buf, offset: int):
        from . import layout
        header, offset = decode_varint(buf, offset)
        tag = header & 3
        count = header >> 2
        if tag == layout.LAYOUT_RAW:
            items = []
            for _ in range(count):
                item, offset = self.element.decode(buf, offset)
                items.append(item)
            return items, offset
        if tag == layout.LAYOUT_DELTA_VARINT:
            return layout.decode_delta_payload(buf, offset, count)
        if tag == layout.LAYOUT_BITMAP:
            return layout.decode_bitmap_payload(buf, offset, count)
        raise SchemaMismatchError(
            f"unknown adjacency layout tag {tag} in {self.name}"
        )

    def skip(self, buf, offset: int) -> int:
        header, offset = decode_varint(buf, offset)
        tag = header & 3
        if tag == 0:
            return offset + (header >> 2) * 8
        if tag == 1:
            nbytes, offset = decode_varint(buf, offset)
            return offset + nbytes
        if tag == 2:
            _, offset = decode_varint(buf, offset)
            nbytes, offset = decode_varint(buf, offset)
            return offset + nbytes
        raise SchemaMismatchError(
            f"unknown adjacency layout tag {tag} in {self.name}"
        )

    def decode_count(self, buf, offset: int) -> tuple[int, int]:
        header, offset = decode_varint(buf, offset)
        return header >> 2, offset

    def stored_layout(self, buf, offset: int) -> int:
        """The layout tag a stored adjacency field currently uses."""
        header, _ = decode_varint(buf, offset)
        return header & 3

    def encode_with_layout(self, value, tag: int) -> bytes | None:
        """Re-encode under a forced tag; ``None`` when ineligible."""
        from . import layout
        return layout.encode_adjacency_with_tag(value, tag)


class BitArrayType(TslType):
    """``BitArray``: varint bit count + packed little-endian bit bytes."""

    name = "BitArray"
    fixed_size = None

    def encode(self, value) -> bytes:
        bits = list(value)
        packed = bytearray((len(bits) + 7) // 8)
        for index, bit in enumerate(bits):
            if bit:
                packed[index // 8] |= 1 << (index % 8)
        return encode_varint(len(bits)) + bytes(packed)

    def decode(self, buf, offset: int):
        count, offset = decode_varint(buf, offset)
        nbytes = (count + 7) // 8
        end = offset + nbytes
        if end > len(buf):
            raise SchemaMismatchError("blob too short for BitArray")
        bits = [
            bool(buf[offset + i // 8] & (1 << (i % 8))) for i in range(count)
        ]
        return bits, end

    def skip(self, buf, offset: int) -> int:
        count, offset = decode_varint(buf, offset)
        return offset + (count + 7) // 8

    def default(self) -> list:
        return []


class StructType(TslType):
    """A user-defined struct: its fields packed in declaration order.

    A struct is itself fixed-size when every field is, which lets nested
    fixed structs live inside fixed prefixes and fixed-element lists.
    """

    def __init__(self, name: str, fields: list[tuple[str, TslType]]):
        self.name = name
        self.fields = fields
        sizes = [t.fixed_size for _, t in fields]
        self.fixed_size = sum(sizes) if all(s is not None for s in sizes) else None

    def field_type(self, field_name: str) -> TslType:
        for name, tsl_type in self.fields:
            if name == field_name:
                return tsl_type
        raise TslTypeError(f"{self.name} has no field {field_name!r}")

    def field_names(self) -> list[str]:
        return [name for name, _ in self.fields]

    def encode(self, value) -> bytes:
        if not isinstance(value, dict):
            raise SchemaMismatchError(
                f"expected dict for struct {self.name}, "
                f"got {type(value).__name__}"
            )
        unknown = set(value) - {name for name, _ in self.fields}
        if unknown:
            raise SchemaMismatchError(
                f"unknown fields for {self.name}: {sorted(unknown)}"
            )
        parts = []
        for name, tsl_type in self.fields:
            item = value.get(name, tsl_type.default())
            parts.append(tsl_type.encode(item))
        return b"".join(parts)

    def decode(self, buf, offset: int):
        out = {}
        for name, tsl_type in self.fields:
            out[name], offset = tsl_type.decode(buf, offset)
        return out, offset

    def skip(self, buf, offset: int) -> int:
        if self.fixed_size is not None:
            return offset + self.fixed_size
        for _, tsl_type in self.fields:
            offset = tsl_type.skip(buf, offset)
        return offset

    def write_fixed(self, buf, offset: int, value) -> None:
        if self.fixed_size is None:
            raise TslTypeError(f"struct {self.name} is not fixed-size")
        raw = self.encode(value)
        buf[offset:offset + len(raw)] = raw

    def default(self) -> dict:
        return {name: t.default() for name, t in self.fields}

    def field_offset(self, buf, field_name: str, base: int = 0) -> int:
        """Offset of ``field_name`` inside a blob starting at ``base``."""
        offset = base
        for name, tsl_type in self.fields:
            if name == field_name:
                return offset
            offset = tsl_type.skip(buf, offset)
        raise TslTypeError(f"{self.name} has no field {field_name!r}")


PRIMITIVES: dict[str, TslType] = {
    "byte": BYTE,
    "bool": BOOL,
    "short": SHORT,
    "int": INT,
    "long": LONG,
    "float": FLOAT,
    "double": DOUBLE,
    "string": STRING,
    # C#-style aliases accepted for convenience
    "int32": INT,
    "int64": LONG,
    "uint8": BYTE,
}
