"""PBGL simulator: BFS with ghost cells and two-sided MPI (Figure 13).

Runs the *same* BFS as :func:`repro.algorithms.bfs.bfs` on the same
topology, but measures memory and charges time with PBGL's mechanisms:

* **memory** — every local vertex and edge is a runtime object, and every
  remote vertex adjacent to a local one is replicated as a *ghost cell*;
  ghost counts are **measured** on the actual generated graph, not
  assumed.  Hash-partitioned power-law graphs ghost their hubs onto
  nearly every machine, which is why PBGL's footprint explodes (the
  paper: ~10x Trinity at degree 16, OOM at 256M nodes degree 32).
* **time** — per level, frontier edges are scanned at pointer-chasing
  cost and every cut edge is a two-sided MPI message (no transparent
  packing), followed by a ghost-synchronisation round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ComputeError
from .costmodel import PbglCostModel


@dataclass
class PbglBfsResult:
    levels: np.ndarray
    level_times: list[float] = field(default_factory=list)
    memory_per_machine: list[int] = field(default_factory=list)
    ghost_cells: int = 0
    out_of_memory: bool = False

    @property
    def elapsed(self) -> float:
        return sum(self.level_times)

    @property
    def total_memory(self) -> int:
        return sum(self.memory_per_machine)

    @property
    def peak_memory(self) -> int:
        return max(self.memory_per_machine, default=0)


class PbglSimulation:
    """A PBGL 'deployment' of one topology."""

    def __init__(self, topology, model: PbglCostModel | None = None):
        self.topology = topology
        self.model = model or PbglCostModel()
        self._ghosts_per_machine = self._measure_ghosts()

    def _measure_ghosts(self) -> np.ndarray:
        """Distinct remote neighbors per machine (measured ghost cells)."""
        topo = self.topology
        machines = topo.machine_count
        ghosts = np.zeros(machines, dtype=np.int64)
        src_machine = topo.machine[
            np.repeat(np.arange(topo.n), topo.out_degrees())
        ]
        dst = topo.out_indices
        for machine in range(machines):
            mask = src_machine == machine
            remote = dst[mask][topo.machine[dst[mask]] != machine]
            ghosts[machine] = len(np.unique(remote))
        return ghosts

    # -- memory -------------------------------------------------------------

    def memory_per_machine(self) -> list[int]:
        """Measured PBGL footprint per machine, in bytes."""
        topo = self.topology
        model = self.model
        out = []
        degrees = topo.out_degrees()
        for machine in range(topo.machine_count):
            local = topo.nodes_of_machine(machine)
            local_edges = int(degrees[local].sum())
            out.append(
                len(local) * model.vertex_object_bytes
                + local_edges * model.edge_entry_bytes
                + int(self._ghosts_per_machine[machine])
                * model.ghost_object_bytes
            )
        return out

    @property
    def ghost_cells(self) -> int:
        return int(self._ghosts_per_machine.sum())

    def check_memory(self) -> bool:
        """True if every machine fits in RAM."""
        return all(
            m <= self.model.ram_per_machine
            for m in self.memory_per_machine()
        )

    # -- BFS -----------------------------------------------------------------

    def run_bfs(self, root: int, allow_oom: bool = True) -> PbglBfsResult:
        """Level-synchronous BFS under the PBGL cost model.

        With ``allow_oom`` the run proceeds but flags ``out_of_memory``
        (Figure 13 plots the OOM point as missing); otherwise raises.
        """
        topo = self.topology
        n = topo.n
        if not 0 <= root < n:
            raise ComputeError(f"root {root} out of range")
        model = self.model
        memory = self.memory_per_machine()
        oom = any(m > model.ram_per_machine for m in memory)
        if oom and not allow_oom:
            raise MemoryError(
                f"PBGL needs {max(memory) / 1e9:.1f} GB on the largest "
                f"machine; {model.ram_per_machine / 1e9:.0f} GB available"
            )

        machines = topo.machine_count
        edge_src = np.repeat(np.arange(n), topo.out_degrees())
        src_machine = topo.machine[edge_src]
        dst_machine = topo.machine[topo.out_indices]
        cut_edge = src_machine != dst_machine

        levels = np.full(n, -1, dtype=np.int64)
        levels[root] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[root] = True
        result = PbglBfsResult(
            levels=levels,
            memory_per_machine=memory,
            ghost_cells=self.ghost_cells,
            out_of_memory=oom,
        )

        level = 0
        while frontier.any():
            active_edges = frontier[edge_src]
            # Compute: slowest machine's frontier edge scan.
            per_machine_edges = np.bincount(
                src_machine[active_edges], minlength=machines
            )
            compute = (per_machine_edges.max() * model.edge_scan_cost
                       / model.processes_per_machine)
            # Communication: every active cut edge is a two-sided MPI
            # message; the busiest sender serialises its own sends.
            active_cut = active_edges & cut_edge
            per_machine_msgs = np.bincount(
                src_machine[active_cut], minlength=machines
            )
            msgs = int(per_machine_msgs.max())
            comm = (msgs * model.mpi_message_cost
                    + msgs * 12 / model.bandwidth
                    + (2 * model.mpi_latency if msgs else 0.0))
            # Ghost synchronisation: each machine refreshes the ghosts
            # touched this level (bounded by its ghost population).
            touched_ghosts = min(
                int(self._ghosts_per_machine.max()), msgs
            )
            ghost_sync = touched_ghosts * 8 / model.bandwidth
            result.level_times.append(
                compute + comm + ghost_sync + model.mpi_collective_cost
            )

            # Advance the frontier (same semantics as the real BFS).
            gather = topo.out_indices[active_edges]
            fresh = np.unique(gather[levels[gather] < 0])
            level += 1
            levels[fresh] = level
            frontier = np.zeros(n, dtype=bool)
            frontier[fresh] = True
        result.levels = levels
        return result
