"""Table 1: the capability matrix of representative graph systems.

The paper's Table 1 classifies systems along four axes: Graph Database
(OLTP-style storage), Online Query Processing, Graph Analytics, and
Scale-out.  This module reproduces the table and — for the systems this
repository actually implements (Trinity itself plus the PBGL and Giraph
simulators) — *derives* the flags from the presence of the implementing
modules rather than hard-coding them, so the table stays honest as the
code evolves.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass


@dataclass(frozen=True)
class SystemCapabilities:
    """One row of Table 1."""

    system: str
    graph_database: bool
    online_queries: bool
    analytics: bool
    scale_out: bool

    def row(self) -> tuple[str, str, str, str, str]:
        flag = {True: "Yes", False: "No"}
        return (
            self.system,
            flag[self.graph_database],
            flag[self.online_queries],
            flag[self.analytics],
            flag[self.scale_out],
        )


# The paper's Table 1, verbatim.
PAPER_TABLE_1 = (
    SystemCapabilities("Neo4j", True, True, True, False),
    SystemCapabilities("HyperGraphDB", True, True, False, False),
    SystemCapabilities("GraphChi", False, False, True, False),
    SystemCapabilities("PEGASUS", False, False, True, True),
    SystemCapabilities("MapReduce", False, False, True, True),
    SystemCapabilities("Pregel", False, False, True, True),
    SystemCapabilities("GraphLab", False, False, True, True),
)


def _module_exists(name: str) -> bool:
    try:
        importlib.import_module(name)
    except ImportError:
        return False
    return True


def trinity_capabilities() -> SystemCapabilities:
    """Trinity's row, derived from what this repository implements.

    * graph database — key-value cells with per-cell atomic operations
      (:mod:`repro.memcloud`) and a data model (:mod:`repro.graph`);
    * online queries — exploration-based query algorithms
      (:mod:`repro.algorithms.people_search`, ``subgraph``);
    * analytics — the vertex-centric engines (:mod:`repro.compute.bsp`);
    * scale-out — the distributed cluster roles (:mod:`repro.cluster`).
    """
    return SystemCapabilities(
        system="Trinity",
        graph_database=(_module_exists("repro.memcloud")
                        and _module_exists("repro.graph")),
        online_queries=(_module_exists("repro.algorithms.people_search")
                        and _module_exists("repro.algorithms.subgraph")),
        analytics=_module_exists("repro.compute.bsp"),
        scale_out=_module_exists("repro.cluster"),
    )


def baseline_capabilities() -> list[SystemCapabilities]:
    """Rows for the baselines this repo implements as simulators."""
    rows = []
    if _module_exists("repro.baselines.pbgl"):
        rows.append(SystemCapabilities(
            "PBGL (simulated)", False, False, True, True,
        ))
    if _module_exists("repro.baselines.giraph"):
        rows.append(SystemCapabilities(
            "Giraph (simulated)", False, False, True, True,
        ))
    return rows


def capability_table(include_trinity: bool = True) -> list[SystemCapabilities]:
    """The full Table 1, optionally with Trinity's derived row appended."""
    table = list(PAPER_TABLE_1)
    table.extend(baseline_capabilities())
    if include_trinity:
        table.append(trinity_capabilities())
    return table


def format_table(rows: list[SystemCapabilities] | None = None) -> str:
    """Render the matrix the way the paper prints it."""
    rows = rows if rows is not None else capability_table()
    header = ("System", "Graph Database", "Online Query Processing",
              "Graph Analytics", "Scale-out")
    data = [header] + [r.row() for r in rows]
    widths = [max(len(row[i]) for row in data) for i in range(len(header))]
    lines = []
    for index, row in enumerate(data):
        lines.append("  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
