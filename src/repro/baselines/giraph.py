"""Giraph simulator: PageRank on Hadoop-hosted Pregel (Figure 12d).

Charges each superstep with Giraph's dominant costs as the paper observed
them: Hadoop/ZooKeeper scheduling overhead, JVM per-edge processing
(boxing, message object churn, GC), and a JVM-object memory model that
reproduces the reported out-of-memory point ("when average degree is 16,
Giraph ran out of memory on the 256 million node graph" with 81 GB
heaps).
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..errors import ComputeError
from .costmodel import GiraphCostModel


@dataclass
class GiraphPageRankResult:
    superstep_times: list[float] = field(default_factory=list)
    memory_per_machine: list[int] = field(default_factory=list)
    out_of_memory: bool = False

    @property
    def elapsed(self) -> float:
        return sum(self.superstep_times)

    @property
    def time_per_superstep(self) -> float:
        if not self.superstep_times:
            return 0.0
        return self.elapsed / len(self.superstep_times)

    @property
    def peak_memory(self) -> int:
        return max(self.memory_per_machine, default=0)


class GiraphSimulation:
    """A Giraph 'deployment' over explicit (vertices, edges, machines).

    Unlike the PBGL simulator this one does not need a materialised
    topology: Giraph's costs are volume-driven (it hash-partitions and
    streams messages), so the simulator accepts graph sizes directly and
    can therefore sweep to paper scale.  Pass a topology's counts for the
    scaled benches.
    """

    def __init__(self, vertices: int, edges: int, machines: int,
                 model: GiraphCostModel | None = None):
        if vertices < 1 or edges < 0 or machines < 1:
            raise ComputeError("invalid Giraph deployment shape")
        self.vertices = vertices
        self.edges = edges
        self.machines = machines
        self.model = model or GiraphCostModel()

    def memory_per_machine(self) -> list[int]:
        """JVM heap needed per worker, assuming even hash partitioning.

        Counts the vertex object graph plus one superstep's in-flight
        message objects (one message per in-edge in PageRank).
        """
        model = self.model
        per_vertex = -(-self.vertices // self.machines)
        per_edge = -(-self.edges // self.machines)
        heap = (per_vertex * model.vertex_object_bytes
                + per_edge * model.edge_object_bytes
                + per_edge * model.message_object_bytes)
        return [heap] * self.machines

    def check_memory(self) -> bool:
        return all(
            m <= self.model.heap_per_machine
            for m in self.memory_per_machine()
        )

    def run_pagerank(self, supersteps: int = 1,
                     allow_oom: bool = True) -> GiraphPageRankResult:
        """Time ``supersteps`` PageRank iterations under the cost model."""
        if supersteps < 1:
            raise ComputeError("supersteps must be >= 1")
        memory = self.memory_per_machine()
        oom = any(m > self.model.heap_per_machine for m in memory)
        if oom and not allow_oom:
            raise MemoryError(
                f"Giraph needs {max(memory) / 1e9:.1f} GB heap per worker; "
                f"{self.model.heap_per_machine / 1e9:.0f} GB configured"
            )
        result = GiraphPageRankResult(
            memory_per_machine=memory, out_of_memory=oom,
        )
        per_machine_edges = self.edges / self.machines
        step = (self.model.superstep_overhead
                + per_machine_edges * self.model.edge_compute_cost)
        result.superstep_times = [step] * supersteps
        return result


def giraph_from_topology(topology,
                         model: GiraphCostModel | None = None
                         ) -> GiraphSimulation:
    """Convenience: deploy Giraph over an existing CSR topology."""
    return GiraphSimulation(
        vertices=topology.n,
        edges=topology.num_edges,
        machines=topology.machine_count,
        model=model,
    )


def giraph_paper_calibration() -> dict[str, float]:
    """The paper's measured Giraph point vs this model (for tests).

    Returns predicted seconds per superstep for 256M vertices, 2B edges,
    16 machines — the paper measured 2455 s.
    """
    sim = GiraphSimulation(256_000_000, 2_048_000_000, 16)
    run = sim.run_pagerank(supersteps=1)
    # The reported OOM is the largest point of the small-cluster curve:
    # 256M vertices at degree 16 do not fit 4 workers' 81 GB heaps.
    oom_sim = GiraphSimulation(
        256_000_000, int(256_000_000 * 16), 4
    )
    return {
        "predicted_seconds": run.time_per_superstep,
        "paper_seconds": 2455.0,
        "oom_at_degree_16": not oom_sim.check_memory(),
    }


def trinity_reference_point(machines: int = 8) -> float:
    """The paper's Trinity PageRank headline: ~51 s per iteration on a
    1B-node, 13B-edge graph with 8 machines; used by the Figure 12(d)
    bench to show the two-orders-of-magnitude gap."""
    if machines != 8:
        raise ComputeError("the paper reports the 8-machine point")
    return 51.0


_EXPECTED_GAP = None  # computed lazily by the benchmark


def expected_speedup_vs_giraph() -> float:
    """Trinity/Giraph per-edge throughput ratio implied by the paper:

    Giraph: 2e9 edges / 2455 s on 16 machines  ~= 5.1e4 edges/s/machine
    Trinity: 13e9 edges / 51 s on 8 machines   ~= 3.2e7 edges/s/machine

    a ratio of ~60-600x — "two orders of magnitude".
    """
    giraph_rate = 2.048e9 / 2455.0 / 16
    trinity_rate = 13e9 / 51.0 / 8
    return trinity_rate / giraph_rate
