"""Cost-model constants for Trinity and the comparator systems.

Every constant is calibrated against a number the paper itself reports,
so the *ratios* between systems — which is what Figures 12(d) and 13
plot — are grounded rather than invented:

* Section 4.3: "an empty runtime object ... requires 24 bytes of memory
  on a 64-bit system"; Trinity's blobs pay ~16 bytes of UID/header per
  cell plus 8 bytes per edge (the Section 5.4 memory formula).
* Figure 13: PBGL "runs out of memory on the 256 million [node] graph"
  at average degree 32 on 16 machines (96 GB each), takes ~10x Trinity's
  memory at degree 16, and runs ~10x slower.  The ghost-cell and MPI
  constants below reproduce those three facts mechanistically.
* Figure 12(d): Giraph needs 2455 s per PageRank iteration on a
  256M-node / 2B-edge graph with 16 machines (81 GB heap), and OOMs at
  256M nodes with degree 16 — two orders of magnitude slower than
  Trinity on 8 machines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrinityCostModel:
    """Trinity-side memory accounting (blob layout, Section 5.4)."""

    cell_header_bytes: int = 16     # UID storage/access (paper's constant)
    edge_bytes: int = 8             # one 64-bit cell id per edge
    attribute_bytes: int = 8        # k in the Section 5.4 formula

    def memory_bytes(self, vertices: int, edges: int) -> int:
        """Whole-graph resident size (online mode)."""
        return (vertices * (self.cell_header_bytes + self.attribute_bytes)
                + edges * self.edge_bytes)


@dataclass(frozen=True)
class PbglCostModel:
    """PBGL: runtime objects, ghost cells, two-sided MPI.

    The ghost-cell mechanism keeps "local replicas of remote cells" —
    one runtime object per (machine, remote neighbor) pair — which "only
    works well for well-partitioned graphs"; on the hash-partitioned
    graphs of the evaluation nearly every high-degree vertex is ghosted
    on most machines.
    """

    vertex_object_bytes: int = 64   # vertex object + property-map slots
    edge_entry_bytes: int = 32      # adjacency entry + edge descriptor
    ghost_object_bytes: int = 168
    """One ghost replica's footprint: the vertex object (64 B) plus its
    distributed-property-map hash entry (~64 B), algorithm properties
    (distance/predecessor/colour, ~24 B) and a message-buffer slot
    (~16 B).  Each MPI *rank* keeps its own ghosts, so a machine running
    8 ranks replicates hot hubs up to 8 times."""
    edge_scan_cost: float = 4.0e-8  # pointer-chasing CPU cost per edge
    mpi_message_cost: float = 4e-6  # two-sided send+recv handshake
    mpi_latency: float = 100e-6
    mpi_collective_cost: float = 2e-3
    """Per-level synchronisation: the two-sided bulk-synchronous
    collective (all-to-all quiescence + ghost commit) across all ranks —
    the coordination Trinity's one-sided paradigm avoids (Section 8)."""
    bandwidth: float = 125e6
    processes_per_machine: int = 8  # MPI ranks (no shared-memory threads)
    ram_per_machine: float = 96e9   # the evaluation cluster's DRAM


@dataclass(frozen=True)
class GiraphCostModel:
    """Giraph: JVM object graphs on Hadoop.

    Per-edge time calibrated from the paper's measured point:
    (2455 s - overhead) * 16 machines / 2e9 edges ~= 19 us per edge per
    machine, the aggregate of JVM boxing, message object churn and GC.
    Memory constants reproduce the reported OOM: 256M vertices * 150 B +
    4.1e9 edges * 20 B > 81 GB heap.
    """

    vertex_object_bytes: int = 150  # Vertex<I,V,E> + boxed value + maps
    edge_object_bytes: int = 20     # Edge object + boxed target id
    message_object_bytes: int = 56  # in-flight message object + buffers
    superstep_overhead: float = 25.0   # Hadoop/ZooKeeper barrier + setup
    edge_compute_cost: float = 19e-6   # per edge per machine (calibrated)
    heap_per_machine: float = 81e9     # the paper's -Xmx setting
