"""The Section 5.2 index argument, as a checkable cost model.

"Most [graph indices] require super-linear space and/or super-linear
construction time.  For example, the R-Join approach for subgraph
matching is based on the 2-hop index.  The complexity to build such an
index is O(n^4).  It is obvious that in large graphs where the value of
n is on the scale of 1 billion, any super-linear approach will become
unrealistic."

This module prices the alternatives so the claim can be asserted:

* :func:`two_hop_index_cost` — the 2-hop cover (Cohen et al.): O(n^4)
  construction, O(n * m^{1/2}) labels of space;
* :func:`neighborhood_index_cost` — the per-user k-hop materialisation
  the paper also dismisses for people search: O(sum of k-hop
  neighborhood sizes) space and update cost proportional to degree^k;
* :func:`trinity_label_index_cost` — the only index Trinity's matcher
  needs: one label entry per vertex, built in one scan;
* :func:`exploration_query_cost` — what Trinity pays per query instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ComputeParams

_OPS_PER_SECOND = 1e9       # a generous single-core rate for index builds
_BYTES_PER_LABEL_ENTRY = 16


@dataclass(frozen=True)
class IndexCost:
    """Construction time (seconds) and space (bytes) for one approach."""

    name: str
    build_seconds: float
    space_bytes: float

    @property
    def build_years(self) -> float:
        return self.build_seconds / (365.25 * 24 * 3600)


def two_hop_index_cost(vertices: int, edges: int,
                       machines: int = 1) -> IndexCost:
    """The R-Join prerequisite: a 2-hop reachability cover.

    Construction is O(n^4) (the paper's figure, from the set-cover
    rounds); space is O(n * sqrt(m)) label entries.
    """
    build = float(vertices) ** 4 / (_OPS_PER_SECOND * machines)
    space = vertices * (edges ** 0.5) * _BYTES_PER_LABEL_ENTRY
    return IndexCost("2-hop index (R-Join)", build, space)


def neighborhood_index_cost(vertices: int, avg_degree: float,
                            hops: int = 3) -> IndexCost:
    """Materialising every user's k-hop neighborhood (the people-search
    index the paper rejects: "the size and the update cost of such an
    index are prohibitive")."""
    neighborhood = min(float(vertices), avg_degree ** hops)
    space = vertices * neighborhood * 8
    build = vertices * neighborhood / _OPS_PER_SECOND
    return IndexCost(f"{hops}-hop neighborhood index", build, space)


def trinity_label_index_cost(vertices: int) -> IndexCost:
    """The label index the STwig matcher uses: strictly linear."""
    return IndexCost(
        "label index (Trinity)",
        vertices / _OPS_PER_SECOND,
        vertices * _BYTES_PER_LABEL_ENTRY,
    )


def exploration_query_cost(candidates: int, avg_degree: float,
                           params: ComputeParams | None = None,
                           machines: int = 8) -> float:
    """Per-query cost of index-free exploration (seconds, simulated).

    ``candidates`` root candidates each expand one adjacency list; the
    work spreads over the cluster (Section 5.2's "fast random access and
    parallel computing").
    """
    params = params or ComputeParams()
    per_candidate = (params.cell_access_cost
                     + avg_degree * params.edge_scan_cost)
    return (candidates * per_candidate
            / (machines * params.threads_per_machine))
