"""Comparator systems (Section 7's baselines and Table 1).

The paper compares Trinity against PBGL (C++/MPI, ghost cells) and
Giraph (JVM/Hadoop Pregel).  Neither ships in this offline environment,
so each is reproduced as a *mechanistic simulator*: the same generated
graphs, the same algorithms, but the memory layout and communication
charged with that system's cost model — ghost-cell replication and
two-sided MPI for PBGL, JVM object overhead and Hadoop per-superstep
scheduling for Giraph.  The constants are documented in
:mod:`~repro.baselines.costmodel` with their calibration sources (the
paper's own measured points).
"""

from .costmodel import GiraphCostModel, PbglCostModel, TrinityCostModel
from .pbgl import PbglBfsResult, PbglSimulation
from .giraph import GiraphPageRankResult, GiraphSimulation
from .capabilities import PAPER_TABLE_1, SystemCapabilities, capability_table

__all__ = [
    "PbglCostModel",
    "GiraphCostModel",
    "TrinityCostModel",
    "PbglSimulation",
    "PbglBfsResult",
    "GiraphSimulation",
    "GiraphPageRankResult",
    "SystemCapabilities",
    "capability_table",
    "PAPER_TABLE_1",
]
