"""The message-passing runtime: one-sided request/response dispatch.

Implements the communication semantics of Sections 2 and 4.2:

* **One-sided**: a component sends to a machine without any prior
  rendezvous; the receiver's registered protocol handler runs on arrival
  (the paper contrasts this with MPI's two-sided paradigm).
* **Synchronous protocols** (`Type: Syn`) return the handler's response to
  the caller, charging a full round trip.
* **Asynchronous protocols** (`Type: Asyn`) are buffered per destination
  and *packed*: many small messages bound for the same machine share one
  physical transfer when ``NetworkParams.packing_enabled`` is set — the
  optimisation the paper singles out as essential when "the total number
  of messages in the system is huge although each message may be small".
* Handlers are registered per (machine, protocol), mirroring the generated
  ``EchoHandler`` pattern: users implement the algorithm logic "as if
  implementing a local method".

If a :class:`~repro.tsl.compiler.CompiledSchema` is supplied, payloads are
encoded/decoded through the protocol's TSL message structs, so wire sizes
are the real blob sizes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable

from ..errors import MachineDownError, ProtocolError
from .message import Message
from .simnet import ParallelRound, SimNetwork

Handler = Callable[[Message, object], object]


class MessageRuntime:
    """Dispatches messages between simulated cluster components."""

    def __init__(self, network: SimNetwork | None = None, schema=None):
        self.network = network or SimNetwork()
        self.schema = schema
        self._handlers: dict[tuple[int, str], Handler] = {}
        self._async_buffers: dict[tuple[int, int], list[Message]] = (
            defaultdict(list)
        )
        self._reply_callbacks: dict[int, Handler] = {}
        self._down: set[int] = set()
        self.delivered = 0

    # -- membership -----------------------------------------------------------

    def fail_machine(self, machine_id: int) -> None:
        """Mark a machine dead: sends to it raise MachineDownError."""
        self._down.add(machine_id)

    def recover_machine(self, machine_id: int) -> None:
        self._down.discard(machine_id)

    def is_alive(self, machine_id: int) -> bool:
        return machine_id not in self._down

    # -- handler registry ---------------------------------------------------

    def register_handler(self, machine_id: int, protocol: str,
                         handler: Handler) -> None:
        """Install the message handler for ``protocol`` on one machine."""
        self._handlers[(machine_id, protocol)] = handler

    def register_everywhere(self, machines, protocol: str,
                            handler_factory) -> None:
        """Install ``handler_factory(machine_id)`` on every machine."""
        for machine_id in machines:
            self.register_handler(machine_id, protocol,
                                  handler_factory(machine_id))

    # -- encoding ------------------------------------------------------------

    def _encode(self, protocol: str, payload, request: bool) -> bytes:
        if self.schema is not None and protocol in self.schema.protocols:
            spec = self.schema.protocol(protocol)
            struct_type = spec.request if request else spec.response
            if struct_type is None:
                if payload not in (None, b"", {}):
                    raise ProtocolError(
                        f"{protocol}: protocol declares void "
                        f"{'request' if request else 'response'}"
                    )
                return b""
            if isinstance(payload, dict):
                return struct_type.encode(payload)
        if isinstance(payload, bytes):
            return payload
        if payload is None:
            return b""
        raise ProtocolError(
            f"{protocol}: cannot encode payload of type "
            f"{type(payload).__name__} without a schema"
        )

    def _decode(self, protocol: str, blob: bytes, request: bool):
        if self.schema is not None and protocol in self.schema.protocols:
            spec = self.schema.protocol(protocol)
            struct_type = spec.request if request else spec.response
            if struct_type is None:
                return None
            value, _ = struct_type.decode(blob, 0)
            return value
        return blob

    # -- sending ---------------------------------------------------------

    def send_sync(self, src: int, dst: int, protocol: str, payload=None):
        """Synchronous request/response; returns the decoded response.

        Charges request transfer + handler dispatch + response transfer on
        the simulated clock.
        """
        self._check_alive(dst)
        start = self.network.clock.now
        request_blob = self._encode(protocol, payload, request=True)
        message = Message(src, dst, protocol, request_blob)
        if self.network.faults is not None and src != dst:
            # Charge injected drops (retransmit + exponential backoff),
            # duplicates (suppressed by correlation id, wire cost paid)
            # and delays before the successful attempt below; raises
            # MachineDownError when the retry budget is exhausted.
            self.network.faults.charge_rpc_faults(
                self.network, src, dst, message.size
            )
        self.network.clock.advance(
            self.network.transfer(src, dst, message.size)
        )
        response_payload = self._dispatch(message)
        response_blob = self._encode(protocol, response_payload, request=False)
        response = message.reply(response_blob)
        self.network.clock.advance(
            self.network.transfer(dst, src, response.size)
        )
        # Per-slave request latency in simulated seconds (round trip +
        # handler), the series the cluster layer reports per machine.
        self.network.obs.histogram(
            "cluster.request.seconds", machine=dst, protocol=protocol,
        ).observe(self.network.clock.now - start)
        return self._decode(protocol, response_blob, request=False)

    def send_async(self, src: int, dst: int, protocol: str,
                   payload=None, on_reply=None) -> None:
        """One-sided asynchronous send; buffered until :meth:`flush`.

        ``on_reply``, if given, receives the handler's decoded response
        after delivery — TSL's asynchronous protocols with responses
        ("calling a protocol defined in the TSL is like calling a local
        method", but without blocking the caller).
        """
        self._check_alive(dst)
        blob = self._encode(protocol, payload, request=True)
        message = Message(src, dst, protocol, blob)
        if on_reply is not None:
            self._reply_callbacks[message.correlation_id] = on_reply
        self._async_buffers[(src, dst)].append(message)

    def flush(self, parallelism: int = 1) -> float:
        """Deliver all buffered async messages as one parallel round.

        Messages sharing a (src, dst) link are packed: the round charges
        one (or few) physical transfers per link instead of one per
        message.  Returns the round's elapsed simulated time.
        """
        if not self._async_buffers:
            return 0.0
        wave = ParallelRound(self.network)
        buffers = self._async_buffers
        self._async_buffers = defaultdict(list)
        for (src, dst), messages in buffers.items():
            total = sum(m.size for m in messages)
            wave.add_message(src, dst, total, len(messages))
        elapsed = wave.finish(parallelism=parallelism)
        for messages in buffers.values():
            for message in messages:
                if message.dst in self._down:
                    raise MachineDownError(message.dst)
                response = self._dispatch(message)
                callback = self._reply_callbacks.pop(
                    message.correlation_id, None
                )
                if callback is not None:
                    # The reply rides the next packed transfer back; its
                    # size is charged with the same cost model.
                    blob = self._encode(message.protocol, response,
                                        request=False)
                    self.network.clock.advance(self.network.transfer(
                        message.dst, message.src,
                        message.reply(blob).size,
                    ))
                    callback(self._decode(message.protocol, blob,
                                          request=False))
        return elapsed

    def broadcast_sync(self, src: int, machines, protocol: str,
                       payload=None) -> list:
        """Bulk-synchronous call: one request per machine, issued in a
        single parallel round; returns the decoded replies in machine
        order (TSL's "bulk synchronous message passing")."""
        machines = list(machines)
        blob = self._encode(protocol, payload, request=True)
        round_ = ParallelRound(self.network)
        for dst in machines:
            self._check_alive(dst)
            round_.add_message(src, dst, len(blob) + 24)
        round_.finish()
        replies = []
        for dst in machines:
            message = Message(src, dst, protocol, blob)
            response = self._dispatch(message)
            response_blob = self._encode(protocol, response, request=False)
            replies.append(self._decode(protocol, response_blob,
                                        request=False))
        # All replies return in one gather round.
        gather = ParallelRound(self.network)
        for dst in machines:
            gather.add_message(dst, src, len(blob) + 24)
        gather.finish()
        return replies

    @property
    def pending_async(self) -> int:
        return sum(len(v) for v in self._async_buffers.values())

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, message: Message):
        handler = self._handlers.get((message.dst, message.protocol))
        if handler is None:
            raise ProtocolError(
                f"machine {message.dst} has no handler for protocol "
                f"{message.protocol!r}"
            )
        decoded = self._decode(message.protocol, message.payload, request=True)
        self.delivered += 1
        return handler(message, decoded)

    def _check_alive(self, machine_id: int) -> None:
        if machine_id in self._down:
            raise MachineDownError(machine_id)
