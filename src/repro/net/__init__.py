"""Network communication: one-sided message passing over a simulated fabric.

Trinity's network module "provides an efficient, one-sided,
machine-to-machine message passing infrastructure" (Section 2) with
request-response semantics, bulk-synchronous messaging, and transparent
packing of small asynchronous messages (Section 4.2).

Because this reproduction runs a whole cluster in one process, the fabric
is a *cost model* rather than sockets: every transfer is delivered
immediately but charged simulated time (latency + bytes/bandwidth +
per-message overhead), and :class:`ParallelRound` aggregates per-machine
compute and communication into the per-round elapsed times that the
benchmarks report.
"""

from .message import Message
from .simnet import ParallelRound, SimClock, SimNetwork
from .runtime import MessageRuntime

__all__ = [
    "Message",
    "SimNetwork",
    "SimClock",
    "ParallelRound",
    "MessageRuntime",
]
