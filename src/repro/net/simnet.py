"""The simulated cluster fabric and its accounting primitives.

Three pieces:

* :class:`SimClock` — a monotonically advancing simulated wall clock.
* :class:`SimNetwork` — charges every transfer against the
  :class:`~repro.config.NetworkParams` cost model and keeps global
  counters (messages, bytes, transfers) that benchmarks report.
* :class:`ParallelRound` — the unit of simulated parallel execution.
  Algorithms run in *rounds* (a BSP superstep, one hop of a breadth-first
  exploration wave): every machine accumulates compute time and outgoing
  messages, and the round's elapsed time is::

      max over machines (compute[m] / effective_parallelism
                         + serialised send time of m's outgoing traffic)

  which is the standard alpha-beta bulk-synchronous model.  Results are
  still computed for real — the round only decides what the simulated
  clock says.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..config import NetworkParams
from ..obs import Counter, MetricsRegistry, get_registry

# Skew can't go below 1 (max/mean); resolve the interesting 1x-10x band.
_SKEW_BUCKETS = (1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0)


class SimClock:
    """Simulated wall clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative {dt}")
        self.now += dt
        return self.now

    def reset(self) -> None:
        self.now = 0.0


@dataclass
class NetworkCounters:
    """Cumulative traffic statistics."""

    messages: int = 0
    payload_bytes: int = 0
    transfers: int = 0        # physical sends after packing
    local_messages: int = 0   # messages that never left the machine


class SimNetwork:
    """The fabric: per-transfer cost model plus global accounting."""

    def __init__(self, params: NetworkParams | None = None,
                 registry: MetricsRegistry | None = None):
        self.params = params or NetworkParams()
        self.clock = SimClock()
        self.counters = NetworkCounters()
        self.obs = registry if registry is not None else get_registry()
        #: Optional :class:`~repro.faults.FaultInjector`; when set, round
        #: transfers and synchronous RPCs pay for injected drops,
        #: duplicates, delays and partitions.
        self.faults = None
        self._machine_sent: dict[int, Counter] = {}
        self._m_rounds = self.obs.counter("net.round.total")
        self._h_elapsed = self.obs.histogram("net.round.elapsed.seconds")
        self._h_compute = self.obs.histogram("net.round.compute.seconds")
        self._h_latency = self.obs.histogram("net.round.latency.seconds")
        self._h_send = self.obs.histogram("net.round.send.seconds")
        self._h_skew = self.obs.histogram("net.round.traffic_skew",
                                          buckets=_SKEW_BUCKETS)

    def machine_sent(self, machine: int) -> Counter:
        """Cached per-machine sent-bytes counter (traffic skew series)."""
        counter = self._machine_sent.get(machine)
        if counter is None:
            counter = self.obs.counter("net.machine.sent.bytes",
                                       machine=machine)
            self._machine_sent[machine] = counter
        return counter

    def transfer(self, src: int, dst: int, size: int,
                 messages: int = 1) -> float:
        """Charge one machine-to-machine transfer; returns its duration.

        Messages between co-located components (``src == dst``) skip the
        wire entirely — the memory cloud makes local access a pointer
        dereference — but still pay the per-message handling overhead.
        """
        self.counters.messages += messages
        self.counters.payload_bytes += size
        if src == dst:
            # Local deliveries never hit the wire: they must not show up
            # in the per-machine sent-bytes series (traffic skew would be
            # polluted by co-located message volume).
            self.counters.local_messages += messages
            return messages * self.params.per_message_overhead
        self.machine_sent(src).inc(size)
        self.counters.transfers += 1
        return self.params.transfer_time(size, messages)

    def reset_counters(self) -> None:
        self.counters = NetworkCounters()


@dataclass
class _MachineLoad:
    compute: float = 0.0   # parallelisable CPU seconds
    serial: float = 0.0    # non-parallelisable CPU seconds
    # dst -> [message count, payload bytes]
    outgoing: dict[int, list[int]] = field(
        default_factory=lambda: defaultdict(lambda: [0, 0])
    )


class ParallelRound:
    """Accumulates one round of simulated parallel work.

    Example — one hop of a query wave::

        wave = ParallelRound(network)
        wave.add_compute(machine, cells_touched * cost.cell_access_cost)
        wave.add_message(machine, remote_machine, payload_bytes)
        elapsed = wave.finish(parallelism=cost.threads_per_machine)
    """

    def __init__(self, network: SimNetwork):
        self.network = network
        self._loads: dict[int, _MachineLoad] = defaultdict(_MachineLoad)
        self._finished = False

    def add_compute(self, machine: int, seconds: float) -> None:
        """Add per-machine CPU work (divided by parallelism at finish)."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self._loads[machine].compute += seconds

    def add_serial_compute(self, machine: int, seconds: float) -> None:
        """CPU work that does not parallelise (charged undivided)."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self._loads[machine].serial += seconds

    def add_message(self, src: int, dst: int, size: int,
                    count: int = 1) -> None:
        """Record ``count`` messages totalling ``size`` payload bytes."""
        if size < 0 or count < 0:
            raise ValueError("message size/count cannot be negative")
        entry = self._loads[src].outgoing[dst]
        entry[0] += count
        entry[1] += size

    def finish(self, parallelism: int = 1) -> float:
        """Charge the round to the network and advance the clock.

        Returns the round's elapsed simulated time: the slowest machine's
        compute (spread over ``parallelism`` threads) plus its serialised
        outgoing transfer time.
        """
        if self._finished:
            raise RuntimeError("ParallelRound.finish() called twice")
        self._finished = True
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        elapsed = 0.0
        slowest = (0.0, 0.0, 0.0)      # breakdown of the slowest machine
        sent_bytes = []
        remote_pairs = []              # fault-charged after the load scan
        params = self.network.params
        for machine, load in self._loads.items():
            compute = load.serial + load.compute / parallelism
            # Sends to different destinations pipeline: propagation
            # latencies overlap, wire occupancy and per-message CPU
            # serialise on the sender's NIC.
            max_latency = 0.0
            serial_send = 0.0
            machine_bytes = 0
            for dst, (count, size) in load.outgoing.items():
                if not count and not size:
                    # add_message(..., count=0) creates the entry without
                    # any traffic; charging it would fabricate a physical
                    # transfer and inflate counters.transfers.
                    continue
                self.network.transfer(machine, dst, size, count)
                if dst == machine:
                    # Local delivery: per-message handling only, and no
                    # contribution to the wire-bytes skew series.
                    serial_send += count * params.per_message_overhead
                    continue
                machine_bytes += size
                remote_pairs.append((machine, dst, size, count))
                latency_part, serial_part = params.transfer_components(
                    size, count
                )
                max_latency = max(max_latency, latency_part)
                serial_send += serial_part
            total = compute + max_latency + serial_send
            if total >= elapsed:
                elapsed = total
                slowest = (compute, max_latency, serial_send)
            if machine_bytes:
                sent_bytes.append(machine_bytes)
        network = self.network
        if network.faults is not None and remote_pairs:
            # Sorted pair order keeps the injector's hash-token sequence
            # independent of dict insertion order, so the reference and
            # vectorized BSP paths draw identical faults (cross_check
            # compares round timings bit-for-bit).
            for src, dst, size, count in sorted(remote_pairs):
                elapsed += network.faults.charge_transfer_faults(
                    network, src, dst, size, count
                )
        network._m_rounds.inc()
        network._h_elapsed.observe(elapsed)
        network._h_compute.observe(slowest[0])
        network._h_latency.observe(slowest[1])
        network._h_send.observe(slowest[2])
        if len(sent_bytes) > 1:
            mean = sum(sent_bytes) / len(sent_bytes)
            network._h_skew.observe(max(sent_bytes) / mean)
        network.clock.advance(elapsed)
        return elapsed

    @property
    def machines_touched(self) -> int:
        return len(self._loads)
