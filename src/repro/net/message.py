"""Message envelopes for the Trinity message-passing framework."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_SEQUENCE = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """One logical message between two cluster components.

    ``payload`` is the already-encoded request or response blob; its size
    is what the fabric charges for.  ``protocol`` names a TSL protocol so
    the receiver can dispatch to the right handler, mirroring the paper's
    generated ``EchoHandler``-style dispatch.
    """

    src: int
    dst: int
    protocol: str
    payload: bytes
    is_request: bool = True
    correlation_id: int = field(default_factory=lambda: next(_SEQUENCE))

    @property
    def size(self) -> int:
        """Wire size: payload plus a fixed 24-byte envelope (src, dst,
        protocol id, correlation id — what a binary header would carry)."""
        return len(self.payload) + 24

    def reply(self, payload: bytes) -> "Message":
        """Build the response envelope for this request."""
        return Message(
            src=self.dst,
            dst=self.src,
            protocol=self.protocol,
            payload=payload,
            is_request=False,
            correlation_id=self.correlation_id,
        )
