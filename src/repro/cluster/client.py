"""Trinity clients: the user-interface tier (Section 2).

"A Trinity client ... communicates with Trinity slaves and Trinity
proxies through the APIs provided by the Trinity library."  The client
implements the access-failure protocol of Section 6.2: an access to a
down machine reports the failure to the leader, waits for the addressing
table to be updated, and retries.
"""

from __future__ import annotations

from ..errors import CellNotFoundError, MachineDownError, RecoveryError


class Client:
    """A library handle for issuing key-value and protocol requests."""

    def __init__(self, client_id: int, cluster):
        self.client_id = client_id          # fabric address
        self.cluster = cluster
        self.retries = 0

    # -- key-value access with failure detection -----------------------------

    def get_cell(self, cell_id: int, max_retries: int = 2) -> bytes:
        """Read a cell, driving recovery if its host machine is down.

        Mirrors Section 6.2: "a machine A that attempts to access a data
        item on machine B which is down can detect the failure of machine
        B ... will inform the leader machine ... wait for the addressing
        table to be updated, and attempt to access the item again."
        """
        for _ in range(max_retries + 1):
            machine = self.cluster.cloud.addressing.machine_for_cell(cell_id)
            slave = self.cluster.slaves[machine]
            if slave.alive:
                payload = self.cluster.runtime.send_sync(
                    self.client_id, machine, "__get_cell__",
                    cell_id.to_bytes(8, "little"),
                )
                if payload == b"":
                    raise CellNotFoundError(cell_id)
                return payload
            # Detected a dead machine: report and wait for recovery.
            self.retries += 1
            self.cluster.report_failure(machine)
        raise MachineDownError(machine)

    def put_cell(self, cell_id: int, value: bytes,
                 max_retries: int = 2) -> None:
        """Write a cell with the same failure-driven retry protocol."""
        for _ in range(max_retries + 1):
            machine = self.cluster.cloud.addressing.machine_for_cell(cell_id)
            slave = self.cluster.slaves[machine]
            if slave.alive:
                self.cluster.runtime.send_sync(
                    self.client_id, machine, "__put_cell__",
                    cell_id.to_bytes(8, "little") + value,
                )
                return
            self.retries += 1
            self.cluster.report_failure(machine)
        raise MachineDownError(machine)

    # -- protocol calls ----------------------------------------------------

    def call(self, machine_id: int, protocol: str, payload=None):
        """Invoke a TSL protocol on one machine, like a local method."""
        return self.cluster.runtime.send_sync(
            self.client_id, machine_id, protocol, payload
        )

    def call_proxy(self, protocol: str, payload=None):
        """Invoke a protocol through the first live proxy."""
        for proxy in self.cluster.proxies:
            if proxy.alive:
                return self.cluster.runtime.send_sync(
                    self.client_id, proxy.proxy_id, protocol, payload
                )
        raise RecoveryError("no live proxy available")
