"""Trinity clients: the user-interface tier (Section 2).

"A Trinity client ... communicates with Trinity slaves and Trinity
proxies through the APIs provided by the Trinity library."  Like every
machine in Section 3, the client keeps its own *replica* of the
addressing table and routes cell accesses through it — which means the
replica can go stale when recovery moves trunks.  The client implements
the access-failure protocol of Section 6.2 on top of that: a failed
access first re-syncs the replica lazily from the primary (the common
case after a recovery the client missed), and only if the table was
already current does it report a genuinely new failure to the leader.
"""

from __future__ import annotations

from ..errors import CellNotFoundError, MachineDownError, RecoveryError
from ..memcloud import AddressingTable


class Client:
    """A library handle for issuing key-value and protocol requests."""

    def __init__(self, client_id: int, cluster):
        self.client_id = client_id          # fabric address
        self.cluster = cluster
        self.retries = 0
        self.addressing_replica: AddressingTable = (
            cluster.cloud.addressing.copy()
        )

    def sync_addressing(self) -> bool:
        """Pull the primary addressing table; True if ours was stale."""
        return self.addressing_replica.sync_from(
            self.cluster.cloud.addressing
        )

    # -- key-value access with failure detection -----------------------------

    def get_cell(self, cell_id: int, max_retries: int = 2) -> bytes:
        """Read a cell, driving recovery if its host machine is down.

        Mirrors Section 6.2: "a machine A that attempts to access a data
        item on machine B which is down can detect the failure of machine
        B ... will inform the leader machine ... wait for the addressing
        table to be updated, and attempt to access the item again."
        Every retry first re-syncs the client's table replica — a stale
        route is repaired lazily, without disturbing the leader.
        """
        machine = self.addressing_replica.machine_for_cell(cell_id)
        for _ in range(max_retries + 1):
            machine = self.addressing_replica.machine_for_cell(cell_id)
            slave = self.cluster.slaves.get(machine)
            if slave is not None and slave.alive:
                try:
                    payload = self.cluster.runtime.send_sync(
                        self.client_id, machine, "__get_cell__",
                        cell_id.to_bytes(8, "little"),
                    )
                except MachineDownError:
                    # The machine died mid-flight (or an injected fault
                    # exhausted the transport's retry budget).
                    payload = None
                if payload is not None:
                    if payload[:1] == b"F":
                        return bytes(payload[1:])
                    if payload == b"W":
                        # Misrouted: the slave (with a fresh table of its
                        # own) refused a cell it does not host.  Our
                        # replica is the stale one — re-sync and re-route.
                        self.retries += 1
                        self.sync_addressing()
                        continue
                    # b"N": the slave owns the route but has no such
                    # cell.  If our table replica was stale the cell may
                    # now live elsewhere: re-sync and re-route.
                    if self.sync_addressing():
                        self.retries += 1
                        continue
                    raise CellNotFoundError(cell_id)
            # The routed machine is unreachable.  A lazy re-sync covers
            # the common case: recovery already moved the cell and only
            # our replica still points at the corpse.
            self.retries += 1
            if self.sync_addressing():
                continue
            # The table is current, so this failure is news: report it,
            # then pick up the table recovery just rewrote.
            self.cluster.report_failure(machine)
            self.sync_addressing()
        raise MachineDownError(machine)

    def put_cell(self, cell_id: int, value: bytes,
                 max_retries: int = 2) -> None:
        """Write a cell with the same failure-driven retry protocol."""
        machine = self.addressing_replica.machine_for_cell(cell_id)
        for _ in range(max_retries + 1):
            machine = self.addressing_replica.machine_for_cell(cell_id)
            slave = self.cluster.slaves.get(machine)
            if slave is not None and slave.alive:
                try:
                    reply = self.cluster.runtime.send_sync(
                        self.client_id, machine, "__put_cell__",
                        cell_id.to_bytes(8, "little") + value,
                    )
                except MachineDownError:
                    reply = None
                if reply == b"K":
                    return
                if reply == b"W":
                    # Misrouted write refused by the slave: a write that
                    # landed here would be logged under the wrong origin
                    # and silently skipped by a later replay.
                    self.retries += 1
                    self.sync_addressing()
                    continue
            self.retries += 1
            if self.sync_addressing():
                continue
            self.cluster.report_failure(machine)
            self.sync_addressing()
        raise MachineDownError(machine)

    # -- protocol calls ----------------------------------------------------

    def call(self, machine_id: int, protocol: str, payload=None):
        """Invoke a TSL protocol on one machine, like a local method."""
        return self.cluster.runtime.send_sync(
            self.client_id, machine_id, protocol, payload
        )

    def call_proxy(self, protocol: str, payload=None):
        """Invoke a protocol through the first live proxy."""
        for proxy in self.cluster.proxies:
            if proxy.alive:
                return self.cluster.runtime.send_sync(
                    self.client_id, proxy.proxy_id, protocol, payload
                )
        raise RecoveryError("no live proxy available")
