"""Heartbeat-based failure detection (Section 6.2).

"Trinity uses heartbeat messages to proactively detect machine failures."
The monitor runs on simulated time: every :meth:`tick` advances the clock
one heartbeat period; live slaves beat, dead ones do not, and a machine
missing ``miss_threshold`` consecutive beats is reported failed.
"""

from __future__ import annotations


class HeartbeatMonitor:
    """Tracks last-heard-from times for every slave."""

    def __init__(self, cluster, miss_threshold: int = 3):
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.cluster = cluster
        self.miss_threshold = miss_threshold
        self.time = 0
        self._last_beat = {
            machine_id: 0 for machine_id in cluster.slaves
        }
        self._reported: set[int] = set()

    def tick(self) -> list[int]:
        """One heartbeat period: collect beats, return newly failed ids."""
        self.time += 1
        for machine_id, slave in self.cluster.slaves.items():
            if slave.alive:
                self._last_beat[machine_id] = self.time
                self._reported.discard(machine_id)
        failed = []
        for machine_id, last in self._last_beat.items():
            silent = self.time - last
            if silent >= self.miss_threshold and machine_id not in self._reported:
                self._reported.add(machine_id)
                failed.append(machine_id)
        return failed

    def machine_restarted(self, machine_id: int) -> None:
        """An out-of-band beat for a machine joining or restarting *now*.

        Without it, a machine that restarts and crashes again before its
        first periodic beat stays in ``_reported`` forever and the second
        failure is never re-detected — so its log buffers are never
        rebalanced and its trunks never recovered.
        """
        self._last_beat[machine_id] = self.time
        self._reported.discard(machine_id)

    def run_until_detection(self, max_ticks: int = 100) -> list[int]:
        """Tick until some failure is detected (or the budget runs out)."""
        for _ in range(max_ticks):
            failed = self.tick()
            if failed:
                return failed
        return []

    def missed_beats(self, machine_id: int) -> int:
        return self.time - self._last_beat[machine_id]
