"""The TrinityCluster facade: wiring every component together.

Owns the memory cloud, the fabric, TFS, the slave/proxy/client roles and
the fault-tolerance machinery, and exposes the orchestration entry points
(fail a machine, report a failure, drive recovery, add a machine).
"""

from __future__ import annotations

from ..config import ClusterConfig
from ..errors import CellNotFoundError, RecoveryError
from ..faults import FaultInjector, FaultPlan
from ..memcloud import MemoryCloud, persistence
from ..memcloud.trunk import MemoryTrunk
from ..net import MessageRuntime, SimNetwork
from ..obs import MetricsRegistry, MetricsReport, get_registry
from ..tfs import TrinityFileSystem
from .client import Client
from .heartbeat import HeartbeatMonitor
from .leader import LeaderElection
from .proxy import Proxy
from .recovery import BufferedLog, RecoveryCoordinator
from .slave import Slave


class TrinityCluster:
    """A complete simulated Trinity deployment.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> cluster = TrinityCluster(ClusterConfig(machines=4))
    >>> client = cluster.new_client()
    >>> client.put_cell(7, b"hello")
    >>> client.get_cell(7)
    b'hello'
    """

    def __init__(self, config: ClusterConfig | None = None,
                 schema=None, enable_buffered_log: bool = True,
                 disk_root=None, registry: MetricsRegistry | None = None,
                 faults: FaultPlan | None = None,
                 arena_factory=None, lock_factory=None):
        self.config = config or ClusterConfig()
        self.obs = registry if registry is not None else get_registry()
        self._arena_factory = arena_factory
        self._lock_factory = lock_factory
        self.cloud = MemoryCloud(self.config, registry=self.obs,
                                 arena_factory=arena_factory,
                                 lock_factory=lock_factory)
        self.network = SimNetwork(self.config.network, registry=self.obs)
        self.runtime = MessageRuntime(self.network, schema=schema)
        self.faults = (FaultInjector(faults, registry=self.obs)
                       if faults is not None else None)
        # RPCs and parallel rounds on this fabric now pay for injected
        # drops/duplicates/delays/partitions; crashes fire in run_chaos().
        self.network.faults = self.faults
        # With a disk_root, TFS blocks live in real files and the whole
        # deployment can be restored after a process restart via
        # restore_from_tfs().
        self.tfs = TrinityFileSystem(
            datanodes=max(3, self.config.machines),
            replication=self.config.replication,
            disk_root=disk_root,
        )
        self.tfs.faults = self.faults
        self.buffered_log = (
            BufferedLog(self.config.machines, self.config.replication)
            if enable_buffered_log else None
        )
        self.slaves: dict[int, Slave] = {
            machine_id: Slave(machine_id, self)
            for machine_id in range(self.config.machines)
        }
        proxy_base = self.config.machines
        self.proxies: list[Proxy] = [
            Proxy(proxy_base + i, self) for i in range(self.config.proxies)
        ]
        self._client_base = proxy_base + self.config.proxies
        self._clients_created = 0
        self.heartbeat = HeartbeatMonitor(self)
        self.election = LeaderElection(self.tfs)
        self.recovery = RecoveryCoordinator(self)
        self.leader_id = self.election.elect(self.slaves.keys())
        self._install_kv_protocols()
        self.recovery.persist_addressing()

    # -- roles ---------------------------------------------------------------

    def new_client(self) -> Client:
        """Create a client handle with its own fabric address."""
        client = Client(self._client_base + self._clients_created, self)
        self._clients_created += 1
        return client

    def alive_machines(self) -> list[int]:
        return [m for m, s in self.slaves.items() if s.alive]

    # -- built-in key-value protocols -------------------------------------

    def _install_kv_protocols(self) -> None:
        for machine_id, slave in self.slaves.items():

            # One-byte reply status: b"F"+data = found, b"N" = no such
            # cell, b"K" = write acknowledged, b"W" = wrong machine (the
            # caller's table replica is stale — re-sync and re-route).
            # A slave must refuse cells it does not own: serving a
            # misrouted write would log it under the wrong origin, and
            # that record would never be replayed when the true owner
            # crashes.
            def _owns_after_sync(slave, cell_id):
                if slave.owns(cell_id):
                    return True
                slave.sync_addressing()
                return slave.owns(cell_id)

            def get_handler(message, payload, slave=slave):
                cell_id = int.from_bytes(payload[:8], "little")
                if not _owns_after_sync(slave, cell_id):
                    return b"W"
                try:
                    return b"F" + slave.local_get(cell_id)
                except CellNotFoundError:
                    return b"N"

            def put_handler(message, payload, slave=slave):
                cell_id = int.from_bytes(payload[:8], "little")
                if not _owns_after_sync(slave, cell_id):
                    return b"W"
                slave.local_put(cell_id, bytes(payload[8:]))
                return b"K"

            self.runtime.register_handler(
                machine_id, "__get_cell__", get_handler
            )
            self.runtime.register_handler(
                machine_id, "__put_cell__", put_handler
            )

    # -- persistence ---------------------------------------------------------

    def backup_to_tfs(self) -> int:
        """Back every trunk up to TFS; truncates satisfied buffered logs."""
        written = persistence.backup_all(self.cloud, self.tfs)
        if self.buffered_log is not None:
            for machine_id in self.slaves:
                self.buffered_log.truncate(machine_id)
        return written

    def restore_from_tfs(self) -> int:
        """Reload every trunk from its TFS image; returns cells restored.

        Together with a disk-backed TFS this restarts a whole deployment
        from cold: construct a fresh cluster with the same ``disk_root``
        and call this to repopulate the memory cloud.
        """
        restored = 0
        for trunk_id in self.cloud.trunks:
            if self.tfs.exists(persistence.trunk_image_path(trunk_id)):
                restored += persistence.restore_trunk(
                    self.cloud, trunk_id, self.tfs
                )
        return restored

    # -- failure handling ----------------------------------------------------

    def fail_machine(self, machine_id: int) -> None:
        """Crash one slave: its trunks' in-memory contents are lost."""
        slave = self.slaves[machine_id]
        slave.fail()
        self.runtime.fail_machine(machine_id)
        trunk_kwargs = {}
        if self._lock_factory is not None:
            trunk_kwargs["lock_factory"] = self._lock_factory
        for trunk_id in self.cloud.addressing.trunks_of(machine_id):
            # Losing the machine loses the DRAM: model it honestly.  The
            # replacement trunk keeps the cluster's arena/lock wiring so
            # shared-memory backends survive a machine failure.
            self.cloud.trunks[trunk_id] = MemoryTrunk(
                trunk_id, self.config.memory, registry=self.obs,
                arena=(self._arena_factory(self.config.memory.trunk_size)
                       if self._arena_factory is not None else None),
                **trunk_kwargs,
            )
        if machine_id == self.leader_id:
            self.leader_id = self.election.elect(self.alive_machines())

    def report_failure(self, machine_id: int) -> None:
        """A failed access was detected: confirm and run recovery."""
        slave = self.slaves.get(machine_id)
        if slave is None or slave.alive:
            return  # spurious report — the paper confirms before recovery
        self.recovery.recover_machine(machine_id)

    def detect_and_recover(self, max_ticks: int = 100) -> list[int]:
        """Heartbeat path: detect silent machines and recover each."""
        failed = self.heartbeat.run_until_detection(max_ticks)
        for machine_id in failed:
            if machine_id == self.leader_id:
                self.leader_id = self.election.elect(self.alive_machines())
            self.recovery.recover_machine(machine_id)
        return failed

    def run_chaos(self, max_ticks: int = 100) -> list[int]:
        """Drive the attached fault plan through simulated time.

        Each heartbeat tick: fire the plan's crashes scheduled for that
        round, let the heartbeat monitor detect the silence, and run the
        Section 6.2 recovery for whatever it reports — re-electing the
        leader when the dead machine held it.  Returns the machines that
        were crashed-and-recovered, in detection order.
        """
        if self.faults is None:
            raise RecoveryError(
                "run_chaos needs a FaultPlan: construct the cluster with "
                "faults=FaultPlan(seed=...)"
            )
        recovered = []
        for _ in range(max_ticks):
            tick = self.heartbeat.time + 1
            self.faults.begin_round(tick)
            for machine_id in self.faults.take_crashes(tick):
                slave = self.slaves.get(machine_id)
                if slave is None or not slave.alive:
                    continue  # already dead (or never existed): no-op
                if len(self.alive_machines()) <= 1:
                    continue  # refuse to kill the last machine standing
                self.fail_machine(machine_id)
            for machine_id in self.heartbeat.tick():
                if machine_id == self.leader_id:
                    self.leader_id = self.election.elect(
                        self.alive_machines()
                    )
                self.recovery.recover_machine(machine_id)
                recovered.append(machine_id)
        return recovered

    def add_machine(self) -> int:
        """Join a new machine: relocate trunks to it and broadcast.

        The relocated trunks are reloaded from TFS on their new owner (the
        data "moves" machine; in the simulation the trunk contents are
        already present, so only placement and the table change).
        """
        new_id = max(self.slaves) + 1
        self.slaves[new_id] = Slave(new_id, self)
        self.runtime.recover_machine(new_id)
        self.cloud.addressing.add_machine(new_id)
        self.recovery.persist_addressing()
        self.recovery.broadcast_addressing()
        # Late registration of the built-in protocols for the newcomer.
        self._install_kv_protocols()
        self.heartbeat.machine_restarted(new_id)
        if self.buffered_log is not None:
            self.buffered_log.rebalance(self.alive_machines())
        return new_id

    # -- observability -------------------------------------------------------

    def metrics_report(self) -> MetricsReport:
        """Everything the deployment recorded: trunk allocator series,
        network rounds, per-slave request latency, engine spans."""
        return MetricsReport.from_registry(self.obs)

    def restart_machine(self, machine_id: int) -> None:
        """Bring a crashed slave back (empty; it rejoins the pool)."""
        slave = self.slaves[machine_id]
        if slave.alive:
            raise RecoveryError(f"machine {machine_id} is already alive")
        slave.restart()
        self.runtime.recover_machine(machine_id)
        # Announce the rejoin to the failure detector: otherwise a crash
        # before the first periodic beat would never be re-detected.
        self.heartbeat.machine_restarted(machine_id)
        if self.buffered_log is not None:
            # Returning capacity can lift origins back to full log
            # replication: while few machines were alive the ring may
            # have offered a single holder, and waiting for the next
            # crash to rebalance would be one crash too late.
            self.buffered_log.rebalance(self.alive_machines())
