"""Failure recovery: trunk reload, table broadcast and buffered logging.

Section 6.2's recovery path, end to end:

1. a failure is confirmed (heartbeat or failed access);
2. the leader redistributes the failed machine's trunk slots over the
   survivors and **reloads those trunks from their TFS images**;
3. online updates made since the last TFS backup are replayed from the
   RAMCloud-style **buffered log** — each write was logged "to remote
   memory buffers before committing [it] to the local memory";
4. the primary addressing table is persisted to TFS *before* the update
   commits, then broadcast; slaves that miss the broadcast re-sync
   lazily on their next failed load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BlockNotFoundError, RecoveryError
from ..memcloud import persistence
from ..utils.hashing import trunk_of

_ADDRESSING_PATH = "/trinity/addressing.tbl"


@dataclass
class _LogRecord:
    sequence: int
    cell_id: int
    value: bytes


@dataclass
class BufferedLog:
    """Remote-memory operation log for online update queries.

    Every write on machine *M* is appended to buffers held in the memory
    of ``replication`` other machines before it commits locally, so a
    crash of *M* loses nothing: survivors replay the records on recovery.
    """

    machines: int
    replication: int = 2
    # holder machine -> origin machine -> records
    _buffers: dict[int, dict[int, list[_LogRecord]]] = field(
        default_factory=dict
    )
    _sequence: int = 0

    def _ring_candidates(self, origin: int, alive=None) -> list[int]:
        """Holder candidates in ring order after ``origin``, live first."""
        candidates = []
        for step in range(1, self.machines):
            machine = (origin + step) % self.machines
            if machine == origin:
                continue
            if alive is not None and machine not in alive:
                continue
            candidates.append(machine)
        return candidates

    def holders_for(self, origin: int, alive=None) -> list[int]:
        """The machines holding origin's log: the next ``replication``
        *live* machines on the ring, skipping origin itself.  A buffer on
        a dead machine is gone the moment that machine's DRAM is, so
        logging to one would silently void the guarantee."""
        return self._ring_candidates(origin, alive)[:self.replication]

    def append(self, origin: int, cell_id: int, value: bytes,
               alive=None) -> None:
        """Log one write before it commits on ``origin``.

        Targets the ring holders plus any live machine already buffering
        this origin (a holder recruited by :meth:`rebalance` after a
        crash): skipping those would fork the copies, leaving each record
        on fewer holders than the replication factor promises.  The
        transiently wider holder set collapses at the next ``truncate``.
        """
        self._sequence += 1
        record = _LogRecord(self._sequence, cell_id, value)
        targets = set(self.holders_for(origin, alive))
        targets.update(
            h for h, by in self._buffers.items()
            if by.get(origin) and (alive is None or h in alive)
        )
        for holder in targets:
            self._buffers.setdefault(holder, {}).setdefault(
                origin, []
            ).append(record)

    def records_for(self, origin: int,
                    exclude_holders=()) -> list[_LogRecord]:
        """All surviving log records for a failed machine, in order."""
        best: dict[int, _LogRecord] = {}
        for holder, by_origin in self._buffers.items():
            if holder in exclude_holders:
                continue
            for record in by_origin.get(origin, ()):
                best[record.sequence] = record
        return [best[s] for s in sorted(best)]

    def truncate(self, origin: int) -> None:
        """Drop origin's log (after a fresh TFS backup makes it redundant)."""
        for by_origin in self._buffers.values():
            by_origin.pop(origin, None)

    def drop_holder(self, holder: int) -> None:
        """A holder machine crashed: its buffered copies are gone too."""
        self._buffers.pop(holder, None)

    def rebalance(self, alive) -> int:
        """Restore the replication factor after a holder crashed.

        A crash that takes out a log *holder* leaves every origin it was
        buffering for one replica short; enough such crashes in a row
        erase an origin's log entirely while the origin itself never
        failed — exactly the sequence that loses an acknowledged write if
        the origin dies before its next TFS backup.

        The guarantee must hold per *record*, not per holder: copies
        diverge across crashes (a holder recruited here missed earlier
        appends; ring holders recruited by ``append`` missed this
        merge), so an origin can show ``replication`` live holders while
        some record survives on only one of them.  Merge the surviving
        records, overwrite any stale live copy with the merged list, and
        recruit fresh holders until the factor is met; returns the number
        of holder copies created or repaired.
        """
        alive = set(alive)
        repaired = 0
        dead_holders = [h for h in self._buffers if h not in alive]
        origins = {o for by in self._buffers.values() for o in by}
        for origin in origins:
            merged = self.records_for(origin, exclude_holders=dead_holders)
            if not merged:
                continue
            sequences = {r.sequence for r in merged}
            candidates = self._ring_candidates(origin, alive)
            want = min(self.replication, len(candidates))
            current = {
                h for h, by in self._buffers.items()
                if h in alive and by.get(origin)
            }
            for holder in current:
                held = self._buffers[holder][origin]
                if {r.sequence for r in held} != sequences:
                    self._buffers[holder][origin] = list(merged)
                    repaired += 1
            for holder in candidates:
                if len(current) >= want:
                    break
                if holder in current:
                    continue
                self._buffers.setdefault(holder, {})[origin] = list(merged)
                current.add(holder)
                repaired += 1
        return repaired


class RecoveryCoordinator:
    """The leader-side recovery logic."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.recoveries = 0

    # -- addressing table persistence -------------------------------------

    def persist_addressing(self) -> None:
        """Write the primary table to TFS (must precede the commit)."""
        self.cluster.tfs.write(
            _ADDRESSING_PATH, self.cluster.cloud.addressing.to_bytes()
        )

    def load_persisted_addressing(self):
        from ..memcloud.addressing import AddressingTable
        return AddressingTable.from_bytes(
            self.cluster.tfs.read(_ADDRESSING_PATH)
        )

    def broadcast_addressing(self) -> int:
        """Push the primary table to every live slave's replica."""
        updated = 0
        for slave in self.cluster.slaves.values():
            if slave.alive and slave.sync_addressing():
                updated += 1
        return updated

    # -- the recovery flow ---------------------------------------------------

    def recover_machine(self, failed_id: int) -> dict[int, int]:
        """Run the full Section-6.2 recovery for one failed machine.

        Returns the trunk relocation map.  Raises
        :class:`RecoveryError` if some trunk has neither a TFS image nor
        buffered-log coverage (i.e. data genuinely lost).
        """
        cluster = self.cluster
        survivors = [
            m for m, slave in cluster.slaves.items()
            if slave.alive and m != failed_id
        ]
        if not survivors:
            raise RecoveryError("no survivors to recover onto")

        failed_trunks = cluster.cloud.addressing.trunks_of(failed_id)
        # 1) persist the *new* table before committing it (paper: "an
        # update to the primary table must be applied to the persistent
        # replica before committing").
        moves = cluster.cloud.addressing.remove_machine(failed_id, survivors)
        self.persist_addressing()

        # 2) reload each lost trunk from TFS onto its new owner.
        missing_images = []
        for trunk_id in failed_trunks:
            try:
                persistence.restore_trunk(
                    cluster.cloud, trunk_id, cluster.tfs
                )
            except BlockNotFoundError:
                missing_images.append(trunk_id)
        if missing_images:
            # Without an image the trunk starts empty; the buffered log
            # below replays online updates, which covers the case where
            # the machine never completed a backup.
            from ..memcloud.trunk import MemoryTrunk
            for trunk_id in missing_images:
                cluster.cloud.trunks[trunk_id] = MemoryTrunk(
                    trunk_id, cluster.config.memory,
                    registry=cluster.cloud.obs,
                )

        # 3) replay buffered-log records for the failed machine, then
        # re-persist the restored trunks to TFS *before* truncating the
        # log — otherwise a second failure of the new owner would lose
        # the replayed writes (they exist nowhere else).
        replayed = 0
        if cluster.buffered_log is not None:
            records = cluster.buffered_log.records_for(
                failed_id, exclude_holders=(failed_id,)
            )
            for record in records:
                # Only replay writes that actually lived on the failed
                # machine's trunks (its log may predate a relocation).
                if trunk_of(record.cell_id,
                            cluster.config.trunk_bits) in failed_trunks:
                    cluster.cloud.put(record.cell_id, record.value)
                    replayed += 1
            if replayed:
                for trunk_id in failed_trunks:
                    persistence.backup_trunk(
                        cluster.cloud, trunk_id, cluster.tfs
                    )
            cluster.buffered_log.truncate(failed_id)
            cluster.buffered_log.drop_holder(failed_id)
            # The failed machine may have been buffering other origins'
            # logs: restore their replication factor from the surviving
            # copies before another failure can erase the last one.
            cluster.buffered_log.rebalance(survivors)

        # 4) broadcast the new table.
        self.broadcast_addressing()
        self.recoveries += 1
        self.last_replayed = replayed
        return moves
