"""Cluster roles and fault tolerance (Sections 2 and 6.2).

A Trinity system is made of **slaves** (store data + compute), optional
**proxies** (middle-tier aggregators that own no data) and **clients**
(user-facing libraries).  This package implements those roles over the
simulated fabric, plus the paper's fault-tolerance machinery:

* heartbeat-based failure detection (plus detection-on-failed-access),
* leader election with a TFS flag against split brain,
* the recovery protocol: reload the failed machine's trunks from TFS onto
  survivors, update the primary addressing table, persist it, broadcast,
* RAMCloud-style buffered logging so online updates between TFS backups
  survive a crash.
"""

from .slave import Slave
from .proxy import Proxy
from .client import Client
from .heartbeat import HeartbeatMonitor
from .leader import LeaderElection
from .recovery import BufferedLog, RecoveryCoordinator
from .cluster import TrinityCluster

__all__ = [
    "Slave",
    "Proxy",
    "Client",
    "HeartbeatMonitor",
    "LeaderElection",
    "BufferedLog",
    "RecoveryCoordinator",
    "TrinityCluster",
]
