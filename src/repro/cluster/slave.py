"""Trinity slaves: the machines that store graph data and compute on it.

"A Trinity slave plays two roles: storing graph data and performing
computation on the data ... each slave stores a portion of the data and
processes messages received from other slaves, proxies, or clients"
(Section 2).
"""

from __future__ import annotations

from ..errors import MachineDownError
from ..memcloud import AddressingTable


class Slave:
    """One storage + compute node of the cluster.

    The slave caches its own replica of the addressing table ("each
    machine keeps a replica of the addressing table", Section 3) and
    refreshes it from the leader's primary when an access misroutes.
    """

    def __init__(self, machine_id: int, cluster):
        self.machine_id = machine_id
        self.cluster = cluster
        self.alive = True
        self.addressing_replica: AddressingTable = (
            cluster.cloud.addressing.copy()
        )
        self.messages_handled = 0

    # -- liveness ------------------------------------------------------------

    def fail(self) -> None:
        """Crash: in-memory trunks are lost; the fabric stops routing here."""
        self.alive = False

    def restart(self) -> None:
        """Come back empty; the leader decides what data to assign."""
        self.alive = True
        self.addressing_replica = self.cluster.cloud.addressing.copy()

    def _check_alive(self) -> None:
        if not self.alive:
            raise MachineDownError(self.machine_id)

    # -- data plane ----------------------------------------------------------

    def owns(self, cell_id: int) -> bool:
        """Whether this slave hosts the cell per its *cached* table."""
        return (
            self.addressing_replica.machine_for_cell(cell_id)
            == self.machine_id
        )

    def local_get(self, cell_id: int) -> bytes:
        """Serve a cell from local trunks (the fast path)."""
        self._check_alive()
        return self.cluster.cloud.get(cell_id)

    def local_put(self, cell_id: int, value: bytes) -> None:
        self._check_alive()
        self.cluster.cloud.put(cell_id, value)
        log = self.cluster.buffered_log
        if log is not None:
            # Buffer on live machines only: a copy placed in a dead
            # machine's memory would not survive to be replayed.
            log.append(self.machine_id, cell_id, value,
                       alive=set(self.cluster.alive_machines()))

    def sync_addressing(self) -> bool:
        """Pull the primary addressing table if ours is stale."""
        return self.addressing_replica.sync_from(self.cluster.cloud.addressing)

    # -- protocol handling ----------------------------------------------

    def register_protocol(self, protocol: str, handler) -> None:
        """Install a message handler on this slave (TSL-style)."""

        def wrapped(message, payload):
            self._check_alive()
            self.messages_handled += 1
            return handler(message, payload)

        self.cluster.runtime.register_handler(
            self.machine_id, protocol, wrapped
        )
