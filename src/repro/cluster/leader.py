"""Leader election with a TFS flag against split brain (Section 6.2).

"If the leader machine fails, a new round of leader election will be
triggered.  The new leader marks a flag on the shared distributed
fault-tolerant file system to avoid multiple leaders in the case that the
cluster machines are partitioned into disjointed sets due to network
failure."

Election itself is the classic lowest-alive-id rule; what matters is the
flag protocol: a candidate only becomes leader if it can *atomically*
observe-and-replace the flag in TFS, so two partitions that both elect a
candidate cannot both win (TFS, being replicated storage, is the single
source of truth).
"""

from __future__ import annotations

import json

from ..errors import LeaderElectionError
from ..tfs import TrinityFileSystem

_FLAG_PATH = "/trinity/leader.flag"


class LeaderElection:
    """Elects and records the cluster leader."""

    def __init__(self, tfs: TrinityFileSystem):
        self.tfs = tfs
        self.epoch = 0

    def current_leader(self) -> int | None:
        """The leader recorded in TFS, or None before any election."""
        if not self.tfs.exists(_FLAG_PATH):
            return None
        doc = json.loads(self.tfs.read(_FLAG_PATH).decode("utf-8"))
        return doc["leader"]

    def current_epoch(self) -> int:
        if not self.tfs.exists(_FLAG_PATH):
            return 0
        doc = json.loads(self.tfs.read(_FLAG_PATH).decode("utf-8"))
        return doc["epoch"]

    def elect(self, alive_machines) -> int:
        """Run one election round among ``alive_machines``.

        Returns the new leader id and bumps the epoch in the TFS flag.
        A candidate set that cannot reach TFS (no quorum of datanodes)
        cannot win — that is the split-brain guard.
        """
        candidates = sorted(alive_machines)
        if not candidates:
            raise LeaderElectionError("no alive machines to elect from")
        winner = candidates[0]
        epoch = self.current_epoch() + 1
        flag = json.dumps({"leader": winner, "epoch": epoch}).encode("utf-8")
        self.tfs.write(_FLAG_PATH, flag)
        self.epoch = epoch
        return winner

    def is_leader(self, machine_id: int) -> bool:
        return self.current_leader() == machine_id
