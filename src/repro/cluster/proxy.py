"""Trinity proxies: data-less middle-tier aggregators (Section 2).

"A Trinity proxy only handles messages but does not own any data ... it
dispatches requests from clients to slaves and sends results back to the
clients after aggregating partial results received from slaves.  Proxies
are optional."

Proxies get machine ids *above* the slave range so the fabric can route to
them without colliding with trunk ownership.
"""

from __future__ import annotations

from ..errors import MachineDownError


class Proxy:
    """Scatter-gather middle tier between clients and slaves."""

    def __init__(self, proxy_id: int, cluster):
        self.proxy_id = proxy_id            # fabric address
        self.cluster = cluster
        self.alive = True
        self.requests_served = 0

    def _check_alive(self) -> None:
        if not self.alive:
            raise MachineDownError(self.proxy_id)

    def scatter_gather(self, protocol: str, payload,
                       combine=None):
        """Dispatch a request to every live slave and aggregate replies.

        ``combine(list_of_replies)`` folds the partial results; by default
        the raw reply list is returned.  This is the paper's "information
        aggregator" pattern.
        """
        self._check_alive()
        self.requests_served += 1
        replies = []
        for slave in self.cluster.slaves.values():
            if not slave.alive:
                continue
            replies.append(self.cluster.runtime.send_sync(
                self.proxy_id, slave.machine_id, protocol, payload
            ))
        if combine is None:
            return replies
        return combine(replies)

    def register_protocol(self, protocol: str, handler) -> None:
        """Install a message handler on the proxy itself."""

        def wrapped(message, payload):
            self._check_alive()
            self.requests_served += 1
            return handler(message, payload)

        self.cluster.runtime.register_handler(
            self.proxy_id, protocol, wrapped
        )
