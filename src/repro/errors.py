"""Exception hierarchy for the Trinity reproduction.

Every error raised by the library derives from :class:`TrinityError` so that
callers can catch library failures with a single ``except`` clause while the
concrete subclasses keep failure modes distinguishable.
"""

from __future__ import annotations


class TrinityError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(TrinityError):
    """An invalid configuration value was supplied."""


# ---------------------------------------------------------------------------
# Memory cloud
# ---------------------------------------------------------------------------


class MemoryCloudError(TrinityError):
    """Base class for memory-cloud failures."""


class CellNotFoundError(MemoryCloudError, KeyError):
    """No cell exists for the requested 64-bit UID."""

    def __init__(self, cell_id: int):
        super().__init__(cell_id)
        self.cell_id = cell_id

    def __str__(self) -> str:  # KeyError quotes its repr; keep it readable
        return f"cell {self.cell_id:#x} not found"


class TrunkFullError(MemoryCloudError):
    """A memory trunk ran out of reserved address space."""


class CellLockedError(MemoryCloudError):
    """A spin lock could not be acquired within the configured budget."""


class StaleSpanError(MemoryCloudError):
    """A zero-copy span outlived a structural change on its trunk.

    Raised by span consumers when the trunk's mutation epoch has moved
    since the spans were fetched: a put/remove/resize/defragmentation may
    have slid cells under the view, so decoding it would read moved
    bytes.  Re-fetch the spans and decode again.
    """

    def __init__(self, trunk_id: int, fetched_epoch: int,
                 current_epoch: int):
        super().__init__(
            f"trunk {trunk_id}: spans fetched at structural epoch "
            f"{fetched_epoch} are stale (trunk is now at epoch "
            f"{current_epoch}); re-fetch before decoding"
        )
        self.trunk_id = trunk_id
        self.fetched_epoch = fetched_epoch
        self.current_epoch = current_epoch


class AddressingError(MemoryCloudError):
    """The addressing table cannot map a trunk to a live machine."""


# ---------------------------------------------------------------------------
# TSL (Trinity Specification Language)
# ---------------------------------------------------------------------------


class TslError(TrinityError):
    """Base class for TSL failures."""


class TslSyntaxError(TslError):
    """The TSL script could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(message)
        self.line = line
        self.column = column

    def __str__(self) -> str:
        base = super().__str__()
        if self.line:
            return f"line {self.line}, col {self.column}: {base}"
        return base


class TslTypeError(TslError):
    """A TSL type is unknown or used inconsistently."""


class SchemaMismatchError(TslError):
    """A blob does not conform to the schema used to read it."""


# ---------------------------------------------------------------------------
# Network / cluster
# ---------------------------------------------------------------------------


class NetworkError(TrinityError):
    """Base class for message-passing failures."""


class ProtocolError(NetworkError):
    """A message violates its declared protocol."""


class MachineDownError(NetworkError):
    """The destination machine is not alive."""

    def __init__(self, machine_id: int):
        super().__init__(f"machine {machine_id} is down")
        self.machine_id = machine_id


class ClusterError(TrinityError):
    """Base class for cluster-management failures."""


class LeaderElectionError(ClusterError):
    """No leader could be established."""


class RecoveryError(ClusterError):
    """Data for a failed machine could not be recovered from TFS."""


# ---------------------------------------------------------------------------
# TFS
# ---------------------------------------------------------------------------


class TfsError(TrinityError):
    """Base class for Trinity File System failures."""


class BlockNotFoundError(TfsError, KeyError):
    """A TFS block (or file) is missing from every replica."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"TFS object {self.name!r} not found"


# ---------------------------------------------------------------------------
# Computation
# ---------------------------------------------------------------------------


class ComputeError(TrinityError):
    """Base class for computation-engine failures."""


class SuperstepError(ComputeError):
    """A vertex program raised during a BSP superstep."""


class QueryError(TrinityError):
    """An online query was malformed or cannot be executed."""
