"""Stable integer argsort with a radix fast path.

numpy's ``kind="stable"`` argsort only radix-sorts 8- and 16-bit
integers; wider integer dtypes fall back to mergesort, roughly an order
of magnitude slower.  Grouping keys in the bulk loading path (node IDs,
trunk indices) usually span a narrow range even when stored as int64, so
shifting them to a uint16 view first buys the radix sort whenever the
*range* — not the absolute values — fits in 16 bits.  The shift is a
strictly monotone mapping, so both the grouping equivalence classes and
the stable order of equal keys are untouched.
"""

from __future__ import annotations

import numpy as np

# Below this size the extra min/max scan costs more than mergesort saves.
_RADIX_CUTOVER = 512


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """``keys.argsort(kind="stable")``, radix-sorted when the range allows.

    Bit-identical output to the plain stable argsort for every input:
    only the sorting algorithm changes, never the order.
    """
    if keys.size > _RADIX_CUTOVER and keys.dtype.kind in "iu":
        lo = keys.min()
        if int(keys.max()) - int(lo) < (1 << 16):
            return (keys - lo).astype(np.uint16).argsort(kind="stable")
    return keys.argsort(kind="stable")
