"""LEB128-style unsigned varint codec — scalar and vectorized.

TSL-generated blob layouts use varints for container lengths so that small
lists (the common case on power-law graphs: most nodes have few edges) cost
one byte of framing instead of four.

This module is the *single* LEB128 implementation in the tree: the scalar
codec below and the vectorized batch forms (:func:`read_varints`,
:func:`encode_varints`) share it, and a pinned cross-test asserts they
agree byte for byte.  ``tsl/batch.py`` wraps :func:`read_varints` and maps
:class:`VarintBatchError` onto its internal scalar-fallback signal.

Zigzag helpers live here too: the delta-varint adjacency layout stores
signed neighbor-id deltas as ``(d << 1) ^ (d >> 63)`` so small magnitudes
of either sign stay short.
"""

from __future__ import annotations

import numpy as np


class VarintBatchError(ValueError):
    """The vectorized decoder cannot mirror the scalar codec here.

    Raised on a truncated varint or one needing a 10th byte (which can
    exceed ``int64``); callers rerun the scalar path, which produces the
    canonical value or the canonical error.
    """


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises ``ValueError`` on truncated
    input or a varint longer than 10 bytes (more than 64 bits).
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint")
        if shift > 63:
            raise ValueError("varint exceeds 64 bits")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed 64-bit integer onto an unsigned zigzag code."""
    return ((value << 1) ^ (value >> 63)) & 0xFFFFFFFFFFFFFFFF


def zigzag_decode(code: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (code >> 1) ^ -(code & 1)


def read_varints(buf: np.ndarray, pos: np.ndarray, limits: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Decode one LEB128 varint per position, all positions per round.

    ``buf`` is a ``uint8`` array; ``pos[i]`` is where varint ``i`` starts
    and ``limits[i]`` is the first byte it must not read.  Returns
    ``(values, next_positions)`` as int64 arrays, mirroring
    :func:`decode_varint` bit for bit for every value below ``2**63``;
    anything suspicious (a read past its limit, a varint needing the 10th
    byte) raises :class:`VarintBatchError` so the scalar path can produce
    the canonical result or error.
    """
    # Fast path: decode every first byte in one shot — on power-law
    # graphs most headers and deltas are single-byte varints, so the
    # loop below frequently never runs.
    if (pos >= limits).any():
        raise VarintBatchError("truncated varint")
    byte = buf[pos].astype(np.int64)
    values = byte & 0x7F
    out_pos = pos + 1
    active = np.flatnonzero(byte & 0x80)
    shift = 7
    while len(active):
        if shift > 56:  # 10-byte varints can exceed int64; let scalar decide
            raise VarintBatchError("varint needs a 10th byte")
        cursor = out_pos[active]
        if (cursor >= limits[active]).any():
            raise VarintBatchError("truncated varint")
        byte = buf[cursor].astype(np.int64)
        values[active] |= (byte & 0x7F) << shift
        out_pos[active] = cursor + 1
        active = active[(byte & 0x80) != 0]
        shift += 7
    return values, out_pos


# Byte-length breakpoints: a value needs its k+1-th byte iff it is >= 2**(7k).
_LENGTH_STEPS = (2 ** (7 * np.arange(1, 10, dtype=np.uint64))).astype(np.uint64)


def varint_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte length per value of a ``uint64`` array."""
    values = np.ascontiguousarray(values, dtype=np.uint64)
    lengths = np.ones(len(values), dtype=np.int64)
    for step in _LENGTH_STEPS:
        lengths += values >= step
    return lengths


def encode_varints(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized LEB128 encode of a ``uint64`` array.

    Returns ``(stream, lengths)``: the concatenated varint bytes and the
    per-value byte counts.  Byte-identical to ``b"".join(encode_varint(v)
    for v in values)`` for every representable value (the full uint64
    range, ten bytes max) — pinned by the varint cross-test.
    """
    values = np.ascontiguousarray(values, dtype=np.uint64)
    lengths = varint_lengths(values)
    total = int(lengths.sum())
    if not total:
        return np.empty(0, dtype=np.uint8), lengths
    starts = np.zeros(len(values), dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    owner = np.repeat(np.arange(len(values)), lengths)
    rank = np.arange(total, dtype=np.int64) - starts[owner]
    chunk = (values[owner] >> (rank.astype(np.uint64) * np.uint64(7)))
    stream = (chunk & np.uint64(0x7F)).astype(np.uint8)
    stream[rank < lengths[owner] - 1] |= 0x80
    return stream, lengths
