"""LEB128-style unsigned varint codec.

TSL-generated blob layouts use varints for container lengths so that small
lists (the common case on power-law graphs: most nodes have few edges) cost
one byte of framing instead of four.
"""

from __future__ import annotations


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a little-endian base-128 varint."""
    if value < 0:
        raise ValueError(f"varint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf, offset: int = 0) -> tuple[int, int]:
    """Decode a varint from ``buf`` starting at ``offset``.

    Returns ``(value, next_offset)``.  Raises ``ValueError`` on truncated
    input or a varint longer than 10 bytes (more than 64 bits).
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise ValueError("truncated varint")
        if shift > 63:
            raise ValueError("varint exceeds 64 bits")
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
