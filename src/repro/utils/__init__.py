"""Small shared utilities: 64-bit hashing, varint codec, statistics."""

from .hashing import hash64, mix64, trunk_of, uid_from
from .varint import decode_varint, encode_varint
from .stats import OnlineStats, percentile
from .sorting import stable_argsort

__all__ = [
    "hash64",
    "mix64",
    "trunk_of",
    "uid_from",
    "encode_varint",
    "decode_varint",
    "OnlineStats",
    "percentile",
    "stable_argsort",
]
