"""Small vectorized array helpers shared by the batched data paths."""

from __future__ import annotations

import numpy as np


def gather_ranges(buf: np.ndarray, starts: np.ndarray, sizes: np.ndarray
                  ) -> np.ndarray:
    """One contiguous copy of ``buf[starts[i]:starts[i] + sizes[i]]`` each.

    The workhorse of the packed bulk-read path: a single fancy-index
    gather replaces one Python-level slice per range.  Ranges may
    overlap, repeat, and appear in any order; empty ranges contribute
    nothing.
    """
    total = int(sizes.sum())
    if not total:
        return np.empty(0, dtype=buf.dtype)
    shifts = np.zeros(len(sizes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=shifts[1:])
    positions = np.repeat(starts - shifts, sizes) + np.arange(total)
    return buf[positions]
