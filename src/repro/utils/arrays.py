"""Small vectorized array helpers shared by the batched data paths."""

from __future__ import annotations

import numpy as np


def range_indices(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(starts[i], starts[i] + sizes[i])`` per range.

    The index form of :func:`gather_ranges` — used directly when the
    caller scatters *into* positions instead of gathering from them.
    Ranges may overlap, repeat, and appear in any order; empty ranges
    contribute nothing.
    """
    total = int(sizes.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    shifts = np.zeros(len(sizes), dtype=np.int64)
    np.cumsum(sizes[:-1], out=shifts[1:])
    return np.repeat(starts - shifts, sizes) + np.arange(total)


def gather_ranges(buf: np.ndarray, starts: np.ndarray, sizes: np.ndarray
                  ) -> np.ndarray:
    """One contiguous copy of ``buf[starts[i]:starts[i] + sizes[i]]`` each.

    The workhorse of the packed bulk-read path: a single fancy-index
    gather replaces one Python-level slice per range.
    """
    positions = range_indices(starts, sizes)
    if not len(positions):
        return np.empty(0, dtype=buf.dtype)
    return buf[positions]
