"""64-bit hashing used throughout the memory cloud.

Section 3 of the paper locates a key-value pair in two hops: the 64-bit UID
is hashed to a p-bit trunk index, then hashed again inside the trunk's hash
table.  Both hops use the same finalizer here: a splitmix64-style avalanche
mix, which is cheap, deterministic across processes (unlike Python's builtin
``hash``) and has full 64-bit dispersion so p-bit prefixes are uniform.
"""

from __future__ import annotations

import functools

import numpy as np

_MASK64 = (1 << 64) - 1


def mix64(x: int) -> int:
    """Avalanche-mix a 64-bit integer (splitmix64 finalizer).

    Every input bit affects every output bit, so taking the low ``p`` bits
    of the result gives a uniform trunk index even for sequential UIDs.
    """
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


# numpy mirrors of the splitmix64 constants; uint64 arithmetic wraps
# modulo 2**64 exactly like the masked scalar path.
_MIX_MULT_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_MULT_2 = np.uint64(0x94D049BB133111EB)
_SHIFT_30 = np.uint64(30)
_SHIFT_27 = np.uint64(27)
_SHIFT_31 = np.uint64(31)


def mix64_array(values) -> np.ndarray:
    """Vectorized :func:`mix64` over a uint64 array.

    Bit-identical to the scalar finalizer (test-pinned), so the batched
    data path routes a whole UID array to trunks with the exact hashes
    the per-cell path would compute.
    """
    x = np.asarray(values, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = (x ^ (x >> _SHIFT_30)) * _MIX_MULT_1
        x = (x ^ (x >> _SHIFT_27)) * _MIX_MULT_2
        return x ^ (x >> _SHIFT_31)


def hash64(data: bytes, seed: int = 0) -> int:
    """Hash a byte string to a 64-bit value (FNV-1a core + final mix)."""
    h = (0xCBF29CE484222325 ^ mix64(seed)) & _MASK64
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & _MASK64
    return mix64(h)


def trunk_of(cell_id: int, trunk_bits: int) -> int:
    """Map a 64-bit UID to its p-bit memory-trunk index (Figure 3)."""
    return mix64(cell_id) & ((1 << trunk_bits) - 1)


def trunk_of_array(cell_ids, trunk_bits: int) -> np.ndarray:
    """Vectorized :func:`trunk_of`: trunk index per UID, as uint64."""
    return mix64_array(cell_ids) & np.uint64((1 << trunk_bits) - 1)


@functools.lru_cache(maxsize=65536)
def uid_from(name: str) -> int:
    """Derive a stable 64-bit UID from a human-readable name.

    Convenience for examples and tests; production callers normally assign
    UIDs from an allocator.  Name-keyed workloads (people search, the RDF
    store) re-hash the same strings constantly, so results are memoised in
    a bounded LRU; :func:`hash64`'s output is pinned by regression tests
    so the cache can never drift the hash.
    """
    return hash64(name.encode("utf-8"))
