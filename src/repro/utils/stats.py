"""Lightweight statistics helpers used by benchmarks and schedulers."""

from __future__ import annotations

import math


class OnlineStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Used by the benchmark harness to summarise per-query latencies without
    holding every sample, and by the BSP scheduler to track per-partition
    message volume.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the summary."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def update(self, values) -> None:
        """Fold an iterable of samples into the summary."""
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 with fewer than 2 samples."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:
        return (
            f"OnlineStats(count={self.count}, mean={self.mean:.6g}, "
            f"stddev={self.stddev:.6g}, min={self.minimum:.6g}, "
            f"max={self.maximum:.6g})"
        )


def percentile(values, q: float) -> float:
    """Return the ``q``-th percentile (0..100) by linear interpolation.

    Small, dependency-free replacement for ``numpy.percentile`` used on the
    latency lists the benchmark harness collects.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    data = sorted(values)
    if not data:
        raise ValueError("percentile of empty sequence")
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(data[lo])
    frac = rank - lo
    interpolated = data[lo] * (1.0 - frac) + data[hi] * frac
    # Interpolation rounding must not escape the sample range.
    return min(max(interpolated, data[lo]), data[hi])
