"""Trinity: a distributed graph engine on a memory cloud — reproduction.

A full-system Python reproduction of Shao, Wang & Li, SIGMOD 2013.  The
cluster is simulated in-process (machines, trunks, fabric and failure
model are all explicit objects); data structures and algorithms are real.

Quick start::

    from repro import ClusterConfig, TrinityCluster
    from repro.graph import GraphBuilder, plain_graph_schema

    cluster = TrinityCluster(ClusterConfig(machines=8))
    builder = GraphBuilder(cluster.cloud, plain_graph_schema())
    builder.add_edges([(0, 1), (1, 2), (2, 0)])
    graph = builder.finalize()
    graph.outlinks(0)   # -> [1]

Package map: :mod:`repro.memcloud` (key-value memory cloud),
:mod:`repro.tsl` (the TSL language), :mod:`repro.net` (message passing),
:mod:`repro.cluster` (roles + fault tolerance), :mod:`repro.graph` (data
model), :mod:`repro.compute` (BSP/async engines), :mod:`repro.algorithms`
(online queries + analytics), :mod:`repro.rdf` (SPARQL on Trinity),
:mod:`repro.generators` (synthetic graphs), :mod:`repro.baselines`
(PBGL/Giraph comparators), :mod:`repro.tfs` (persistence).
"""

from .config import ClusterConfig, ComputeParams, MemoryParams, NetworkParams
from .errors import TrinityError
from .faults import FaultPlan
from .memcloud import MemoryCloud
from .cluster import TrinityCluster
from .tsl import compile_tsl

__version__ = "1.0.0"

__all__ = [
    "ClusterConfig",
    "NetworkParams",
    "MemoryParams",
    "ComputeParams",
    "TrinityError",
    "FaultPlan",
    "MemoryCloud",
    "TrinityCluster",
    "compile_tsl",
    "__version__",
]
