"""Configuration objects shared across the Trinity reproduction.

The paper's cluster is parameterised by the number of machines ``m``, the
number of memory trunks ``2**p`` (Section 3), and the network fabric
(Section 7 lists both an IPoIB and a gigabit adapter).  The simulation keeps
all of those knobs explicit so benchmarks can sweep them the way the paper's
evaluation does.

All times are seconds and all sizes are bytes unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError


@dataclass(frozen=True)
class NetworkParams:
    """Cost model for the simulated cluster fabric.

    The defaults approximate the paper's gigabit-Ethernet deployment: ~100 us
    one-way latency including the software stack, 1 Gbps payload bandwidth,
    and a small fixed per-message CPU overhead that message packing (Section
    4.2) exists to amortise.
    """

    latency: float = 100e-6
    """One-way propagation + OS stack latency per network transfer."""

    bandwidth: float = 125e6
    """Payload bytes per second (1 Gbps = 125 MB/s)."""

    per_message_overhead: float = 5e-8
    """CPU cost of handling one logical message.  Deliberately small:
    Trinity packs small messages into shared transfers (Section 4.2), so
    the marginal per-message work is a ~16-byte memcpy plus amortised
    dispatch (~50 ns) — contrast with the ~4 us two-sided handshake the
    PBGL/MPI cost model charges per message."""

    packing_enabled: bool = True
    """Pack small messages bound for the same machine into one transfer."""

    max_packed_bytes: int = 64 * 1024
    """Flush a packed buffer once it reaches this many bytes."""

    def transfer_time(self, size: int, messages: int = 1) -> float:
        """Simulated wall-clock time to move ``size`` payload bytes.

        ``messages`` logical messages are carried; with packing enabled they
        share one latency hop per ``max_packed_bytes`` flush, otherwise each
        pays its own latency.
        """
        latency_part, serial_part = self.transfer_components(size, messages)
        return latency_part + serial_part

    def transfer_components(self, size: int,
                            messages: int = 1) -> tuple[float, float]:
        """Split one transfer's cost into (latency, serialised) parts.

        The latency part overlaps with other in-flight transfers from the
        same sender (the NIC pipelines sends to different destinations);
        the serialised part (wire occupancy + per-message CPU) does not.
        :class:`~repro.net.simnet.ParallelRound` uses the split to model
        a machine fanning out to many peers in one round.
        """
        if size < 0:
            raise ConfigError(f"negative transfer size: {size}")
        wire = size / self.bandwidth
        overhead = messages * self.per_message_overhead
        if self.packing_enabled:
            # Packed buffers stream: one latency to first byte, then
            # wire-limited.
            return self.latency, wire + overhead
        # Unpacked small messages each pay their own round-trip setup —
        # the cost message packing exists to remove (Section 4.2).
        return messages * self.latency, wire + overhead


@dataclass(frozen=True)
class MemoryParams:
    """Parameters for memory trunks (Sections 3 and 6.1)."""

    trunk_size: int = 4 * 1024 * 1024
    """Reserved virtual address space per trunk.  The paper reserves 2 GB;
    the simulation defaults to 4 MB so tests stay fast, and benchmarks raise
    it when they need to."""

    page_size: int = 4096
    """Commit granularity: pages are committed as the append head advances."""

    defrag_trigger_ratio: float = 0.25
    """Run the defragmentation daemon once this fraction of committed bytes
    is garbage (gaps left by cell removal or relocation)."""

    reservation_factor: float = 2.0
    """Short-lived reservation: when a cell grows, over-allocate by this
    factor so repeated growth does not keep relocating the cell (Section
    6.1).  ``1.0`` disables reservation."""

    spinlock_budget: int = 1 << 16
    """Number of spins before ``CellLockedError`` (deadlock guard)."""

    hashtable_storage: str = "list"
    """Backing storage for each trunk's hash table: ``"list"`` (Python
    lists) or ``"numpy"`` (int64/uint64 arrays).  Both implement the same
    linear-probing algorithm with identical probe accounting; the numpy
    backend is denser and supports cheap bulk pre-sizing."""

    storage: str = "resident"
    """Byte backing per trunk: ``"resident"`` keeps the whole arena in
    RAM (the default, behaviour-identical to the pre-tier trunk);
    ``"paged"`` backs the arena with an mmap'd page file and keeps at
    most ``page_budget`` pages of it resident — graphs bigger than RAM
    load and serve at the cost of page faults (Section 3's 10^9-node
    claims need exactly this spill tier)."""

    storage_page_size: int = 4096
    """Paging granularity of the ``"paged"`` storage tier (bytes).
    Independent of ``page_size``, which is the *commit* accounting
    granularity shared by both tiers."""

    page_budget: int = 64
    """Maximum RAM-resident pages per paged trunk.  Touching more pages
    evicts the least recently used unpinned one (dirty pages are written
    back first).  Ignored by resident storage."""

    spill_dir: str | None = None
    """Directory for paged trunks' page files.  ``None`` lets each
    owner (the cloud, or a standalone trunk) manage a private temp
    location that is removed with it."""

    layout_policy: object = None
    """Adjacency layout selection for schemas bound to this cloud:
    ``None`` (keep each schema's own policy — the adaptive default),
    ``"adaptive"``, ``"raw"`` (pre-layout fixed-width wire format), or a
    :class:`~repro.tsl.layout.LayoutPolicy` with custom thresholds.
    Installed onto a schema's edge-annotated ``List<long>`` fields when a
    :class:`~repro.graph.GraphBuilder` or :class:`~repro.graph.Graph`
    binds that schema to a cloud built with these params."""

    def __post_init__(self) -> None:
        if self.trunk_size <= 0:
            raise ConfigError("trunk_size must be positive")
        if self.hashtable_storage not in ("list", "numpy"):
            raise ConfigError(
                f"hashtable_storage must be 'list' or 'numpy', "
                f"got {self.hashtable_storage!r}"
            )
        if self.storage not in ("resident", "paged"):
            raise ConfigError(
                f"storage must be 'resident' or 'paged', "
                f"got {self.storage!r}"
            )
        if self.storage_page_size <= 0:
            raise ConfigError("storage_page_size must be positive")
        if self.storage == "paged" and self.trunk_size % self.storage_page_size:
            raise ConfigError(
                "trunk_size must be a multiple of storage_page_size "
                "when storage='paged'"
            )
        if self.page_budget < 1:
            raise ConfigError("page_budget must be >= 1")
        if self.page_size <= 0 or self.trunk_size % self.page_size:
            raise ConfigError("trunk_size must be a multiple of page_size")
        if not 0.0 < self.defrag_trigger_ratio <= 1.0:
            raise ConfigError("defrag_trigger_ratio must be in (0, 1]")
        if self.reservation_factor < 1.0:
            raise ConfigError("reservation_factor must be >= 1.0")
        try:
            self.resolved_layout_policy()
        except ValueError as exc:
            raise ConfigError(str(exc)) from None

    def resolved_layout_policy(self):
        """The ``layout_policy`` knob as a LayoutPolicy (or None)."""
        from .tsl.layout import resolve_layout_policy
        return resolve_layout_policy(self.layout_policy)


@dataclass(frozen=True)
class ComputeParams:
    """Per-machine compute cost model used by the simulated clock.

    These constants determine only the *simulated* times reported by
    benchmarks; algorithm results are computed for real.  The defaults are
    calibrated so that a 13-degree power-law graph reproduces the paper's
    headline numbers (3-hop people search < 100 ms on 8 machines; one
    PageRank superstep on a 1B-node graph < 60 s on 8 machines).
    """

    cell_access_cost: float = 1.0e-7
    """Simulated time to hash a UID and touch its cell in a trunk."""

    edge_scan_cost: float = 6e-9
    """Simulated time per adjacency-list entry scanned."""

    vertex_compute_cost: float = 1.5e-8
    """Simulated per-vertex user-code cost in a BSP superstep."""

    threads_per_machine: int = 24
    """Hardware parallelism per machine (paper: 2 CPUs x 12 threads)."""

    barrier_cost: float = 1e-3
    """Synchronisation cost per BSP barrier."""


@dataclass(frozen=True)
class ClusterConfig:
    """Top-level description of a simulated Trinity cluster."""

    machines: int = 8
    """Number of slave machines."""

    trunk_bits: int = 8
    """p: the memory cloud is partitioned into 2**p trunks (Section 3).
    The paper requires ``2**p > m`` so each machine hosts several trunks."""

    proxies: int = 0
    """Optional middle-tier proxies (Section 2)."""

    replication: int = 2
    """TFS replication factor for persisted trunks."""

    network: NetworkParams = field(default_factory=NetworkParams)
    memory: MemoryParams = field(default_factory=MemoryParams)
    compute: ComputeParams = field(default_factory=ComputeParams)

    seed: int = 0
    """Seed for all randomised placement decisions (reproducibility)."""

    def __post_init__(self) -> None:
        if self.machines <= 0:
            raise ConfigError("machines must be positive")
        if not 1 <= self.trunk_bits <= 24:
            raise ConfigError("trunk_bits must be in [1, 24]")
        if 2 ** self.trunk_bits <= self.machines:
            raise ConfigError(
                f"2**trunk_bits ({2 ** self.trunk_bits}) must exceed the "
                f"machine count ({self.machines}); the paper requires "
                "multiple trunks per machine"
            )
        if self.proxies < 0:
            raise ConfigError("proxies must be non-negative")
        if self.replication < 1:
            raise ConfigError("replication must be at least 1")

    @property
    def trunk_count(self) -> int:
        """Total number of memory trunks in the cloud (2**p)."""
        return 2 ** self.trunk_bits
