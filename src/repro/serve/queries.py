"""Resumable server-side queries: cooperative plans over batch reads.

A served query is a *plan*: a generator that yields :class:`BatchOp`
read requests and receives their results back via ``send``.  The
scheduler steps every in-flight plan once per fusion window, so the
frontiers of all concurrent queries meet in one place and can share a
single bulk read against the memory cloud (see
:mod:`repro.serve.fusion`).

Each query class also knows how to run itself through the existing
one-at-a-time library path (:meth:`ServeQuery.run_sequential`) — that is
both the serving layer's correctness oracle (``cross_check=True`` shadow
replays every completion through it and raises
:class:`~repro.memcloud.cloud.BulkPathDivergence` on any difference) and
the no-optimization baseline the serving benchmark measures against.

Plans return *canonical* results — plain sorted lists/dicts that are
order-invariant over scheduling, so a fused execution, a cached answer
and a sequential replay of the same query are directly comparable with
``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

import numpy as np

from ..algorithms.people_search import _VisitedTracker, people_search
from ..algorithms.subgraph import match_subgraph
from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence
from ..net.simnet import SimNetwork
from ..tql.engine import _OPS, execute_tql
from ..tql.parser import TqlQuery, parse_tql

#: Batch-read kinds a plan may yield.  ``outlinks``/``inlinks`` answer
#: with a CSR ``(indptr, flat)`` pair over the op's ids; ``field_eq``
#: with a bool array; ``field_read`` with a list of decoded values.
OP_KINDS = ("outlinks", "inlinks", "field_eq", "field_read")


@dataclass
class BatchOp:
    """One batched read request yielded by a query plan."""

    kind: str
    ids: np.ndarray
    field: str | None = None
    value: object | None = None

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise QueryError(f"unknown batch op kind {self.kind!r}")
        self.ids = np.asarray(self.ids, dtype=np.int64)

    def group_key(self) -> tuple:
        """Ops with equal keys fuse into one bulk read per window."""
        return (self.kind, self.field, self.value)


class ServeQuery:
    """Base class: a cache key, a cooperative plan, a sequential oracle."""

    cls_name = "query"

    def key(self) -> tuple:
        """Hashable identity for the result cache (same key == same
        answer at the same mutation epoch)."""
        raise NotImplementedError

    def plan(self, ctx):
        """Generator yielding :class:`BatchOp`; returns the canonical
        result.  ``ctx`` is the serving server (graph + snapshots)."""
        raise NotImplementedError

    def run_sequential(self, ctx):
        """The existing one-at-a-time library execution of this query,
        in canonical form — the correctness oracle and the baseline."""
        raise NotImplementedError

    def check(self, served, reference) -> None:
        """Raise :class:`BulkPathDivergence` unless served == reference."""
        if served != reference:
            raise BulkPathDivergence(
                f"{self.cls_name} {self.key()!r}: served result diverges "
                f"from the sequential path: {served!r} != {reference!r}"
            )


class PeopleSearchQuery(ServeQuery):
    """The paper's "David problem" as a fusible BFS plan.

    Canonical result: ``{"matches": sorted ids, "visited": count}`` —
    both are set-determined, so any interleaving of the frontier
    expansion (fused across queries or not) produces the same value as
    :func:`repro.algorithms.people_search.people_search`.
    """

    cls_name = "people_search"

    def __init__(self, start: int, name: str, hops: int = 3):
        if hops < 1:
            raise QueryError("hops must be >= 1")
        self.start = int(start)
        self.name = name
        self.hops = int(hops)

    def key(self) -> tuple:
        return (self.cls_name, self.start, self.name, self.hops)

    def plan(self, ctx):
        graph = ctx.graph
        visited = _VisitedTracker(self.start)
        frontier = np.asarray([self.start], dtype=np.int64)
        matches: list[int] = []
        for _hop in range(self.hops):
            if not len(frontier):
                break
            indptr, flat = yield BatchOp("outlinks", frontier)
            del indptr
            fresh = flat[visited.unseen(flat)]
            _, first_seen = np.unique(fresh, return_index=True)
            new = fresh[np.sort(first_seen)]
            if not len(new):
                break
            visited.add(new)
            hits = yield BatchOp("field_eq", new, field="Name",
                                 value=self.name)
            matches.extend(new[hits].tolist())
            frontier = new
        return {"matches": sorted(matches), "visited": visited.count - 1}

    def run_sequential(self, ctx):
        result = people_search(ctx.graph, self.start, self.name,
                               hops=self.hops, network=SimNetwork())
        return {"matches": sorted(result.matches),
                "visited": result.visited}


class LandmarkBfsQuery(ServeQuery):
    """Level-synchronous BFS from one source through the live cells.

    The exploration primitive under landmark selection and the distance
    oracle (Section 5.5) — served online here.  Canonical result:
    ``{"levels": [frontier sizes], "reached": count}``.
    """

    cls_name = "landmark_bfs"

    def __init__(self, source: int, max_hops: int = 6):
        if max_hops < 1:
            raise QueryError("max_hops must be >= 1")
        self.source = int(source)
        self.max_hops = int(max_hops)

    def key(self) -> tuple:
        return (self.cls_name, self.source, self.max_hops)

    def plan(self, ctx):
        visited = _VisitedTracker(self.source)
        frontier = np.asarray([self.source], dtype=np.int64)
        levels: list[int] = []
        for _hop in range(self.max_hops):
            if not len(frontier):
                break
            _indptr, flat = yield BatchOp("outlinks", frontier)
            fresh = flat[visited.unseen(flat)]
            _, first_seen = np.unique(fresh, return_index=True)
            new = fresh[np.sort(first_seen)]
            if not len(new):
                break
            visited.add(new)
            levels.append(len(new))
            frontier = new
        return {"levels": levels, "reached": visited.count - 1}

    def run_sequential(self, ctx):
        graph = ctx.graph
        visited = {self.source}
        frontier = [self.source]
        levels: list[int] = []
        for _hop in range(self.max_hops):
            if not frontier:
                break
            next_frontier: list[int] = []
            for node in frontier:
                for neighbor in graph.outlinks(node):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.append(neighbor)
            if not next_frontier:
                break
            levels.append(len(next_frontier))
            frontier = next_frontier
        return {"levels": levels, "reached": len(visited) - 1}


class TqlServeQuery(ServeQuery):
    """A TQL query; fuses when it is an anchored single-chain reach.

    ``MATCH (a = X) -[Field*m..n]-> (b {attr: 'v', ...}) WHERE <residual
    on b> RETURN b`` is the bounded-BFS-plus-filter shape the fusion
    window speaks natively: the chain expands through ``outlinks`` ops
    (or ``inlinks`` ops for reverse edges — ``<-[Field]-`` — and for
    forward traversal of the schema's in-field), node filters ride
    ``field_eq`` ops, and WHERE conditions whose variable operands all
    name the *target* node are applied post-expansion from ``field_read``
    columns with the inline engine's operator semantics.  Anything else —
    conditions on the anchor, longer chains, LIMIT, projections through
    fields, unanchored scans — executes inline through
    :func:`repro.tql.engine.execute_tql` when the plan is first stepped.
    Canonical result: sorted distinct rows.
    """

    cls_name = "tql"

    def __init__(self, text: str):
        self.text = text
        self.query: TqlQuery = parse_tql(text)

    def key(self) -> tuple:
        # Whitespace-normalized so trivially-reformatted identical
        # queries share one result-cache entry.
        return (self.cls_name, " ".join(self.text.split()))

    # -- fusibility --------------------------------------------------------

    def _fusion_shape(self, graph) -> str | None:
        """The fused adjacency op kind (``outlinks``/``inlinks``) that
        executes this query's chain, or None when it must run inline."""
        q = self.query
        if len(q.nodes) != 2 or len(q.edges) != 1 or q.limit is not None:
            return None
        anchor_node, target = q.nodes
        if anchor_node.var == target.var:
            # Re-mentioning a variable joins back to it (engine
            # semantics), not a fresh BFS target.
            return None
        if anchor_node.anchor is None or anchor_node.filters:
            return None
        if target.anchor is not None:
            return None
        edge = q.edges[0]
        if edge.min_hops < 1:
            return None
        if len(q.returns) != 1:
            return None
        ret = q.returns[0]
        if ret.is_literal or ret.var != target.var or ret.field is not None:
            return None
        declared = set(graph.graph_schema.node_type.field_names())
        if any(field not in declared for field, _v in target.filters):
            return None
        # field_eq fusion compares raw utf-8 bytes — strings only.
        if not all(isinstance(value, str) for _f, value in target.filters):
            return None
        for condition in q.conditions:
            for operand in (condition.left, condition.right):
                if operand.var is not None and operand.var != target.var:
                    # Anchor-side (or unrelated) conditions prune before
                    # expansion in the engine; keep those inline.
                    return None
                if (operand.field is not None
                        and operand.field not in declared):
                    return None
            if condition.left.is_literal and condition.right.is_literal:
                return None
        # Map the edge direction onto a batched adjacency read with the
        # exact semantics of the engine's single_expand.
        schema = graph.graph_schema
        if not edge.reverse:
            if edge.field == schema.out_field:
                return "outlinks"
            if schema.in_field is not None and edge.field == schema.in_field:
                return "inlinks"
            return None
        if edge.field == schema.out_field:
            # <-[out]- walks the in-lists on a directed schema; on an
            # undirected one the single list is symmetric already.
            return "inlinks" if schema.in_field is not None else "outlinks"
        if schema.in_field is not None and edge.field == schema.in_field:
            return "outlinks"
        return None

    def fusible(self, graph) -> bool:
        return self._fusion_shape(graph) is not None

    def _operand_column(self, operand, alive: np.ndarray):
        """Per-candidate values of one WHERE operand (a sub-plan:
        ``yield from`` it inside :meth:`plan`)."""
        if operand.is_literal:
            return [operand.literal] * len(alive)
        if operand.field is None:
            return [int(node) for node in alive.tolist()]
        values = yield BatchOp("field_read", alive, field=operand.field)
        return list(values)

    def plan(self, ctx):
        graph = ctx.graph
        op_kind = self._fusion_shape(graph)
        if op_kind is None:
            result = execute_tql(graph, self.query, network=SimNetwork())
            return sorted(result.rows)
        anchor = self.query.nodes[0].anchor
        if anchor not in graph:
            return []
        edge = self.query.edges[0]
        # Bounded BFS, Cypher ``*m..n`` semantics: nodes whose *first*
        # reach depth along the field lies in [min_hops, max_hops].
        visited = _VisitedTracker(anchor)
        frontier = np.asarray([anchor], dtype=np.int64)
        candidates: list[np.ndarray] = []
        for depth in range(1, edge.max_hops + 1):
            if not len(frontier):
                break
            _indptr, flat = yield BatchOp(op_kind, frontier)
            fresh = flat[visited.unseen(flat)]
            _, first_seen = np.unique(fresh, return_index=True)
            new = fresh[np.sort(first_seen)]
            if not len(new):
                break
            visited.add(new)
            if depth >= edge.min_hops:
                candidates.append(new)
            frontier = new
        if not candidates:
            return []
        found = np.concatenate(candidates)
        keep = np.ones(len(found), dtype=bool)
        for field_name, value in self.query.nodes[1].filters:
            hits = yield BatchOp("field_eq", found[keep], field=field_name,
                                 value=value)
            keep[np.flatnonzero(keep)] = hits
        # WHERE residuals: filters over the target variable, applied
        # post-expansion with the inline engine's operators (including
        # its canonical error on uncomparable operands).
        for condition in self.query.conditions:
            alive = found[keep]
            if not len(alive):
                break
            left = yield from self._operand_column(condition.left, alive)
            right = yield from self._operand_column(condition.right, alive)
            apply = _OPS[condition.op]
            verdicts = np.empty(len(alive), dtype=bool)
            for i, (lhs, rhs) in enumerate(zip(left, right)):
                try:
                    verdicts[i] = bool(apply(lhs, rhs))
                except TypeError as exc:
                    raise QueryError(
                        f"cannot compare {lhs!r} {condition.op} "
                        f"{rhs!r}: {exc}"
                    ) from None
            keep[np.flatnonzero(keep)] = verdicts
        return sorted((int(node),) for node in found[keep])

    def run_sequential(self, ctx):
        result = execute_tql(ctx.graph, self.query, network=SimNetwork())
        return sorted(result.rows)


class SubgraphServeQuery(ServeQuery):
    """Subgraph match over the server's topology/label snapshot.

    Runs inline (no fusion — the matcher explores a memory-resident CSR
    snapshot, not the live cells), but still rides the admission queue,
    SLO accounting and result cache.  The server rebuilds its snapshot
    whenever the cloud's mutation epoch moves, so a cached embedding
    list can never outlive the graph it was found in.  Canonical result:
    sorted embeddings.
    """

    cls_name = "subgraph"

    def __init__(self, query, max_embeddings: int = 256):
        self.query = query
        self.max_embeddings = int(max_embeddings)

    def key(self) -> tuple:
        return (self.cls_name, repr(self.query), self.max_embeddings)

    def _match(self, ctx):
        topology, labels, index = ctx.snapshot()
        result = match_subgraph(topology, labels, self.query,
                                network=SimNetwork(), index=index,
                                max_embeddings=self.max_embeddings)
        return sorted(result.embeddings)

    def plan(self, ctx):
        return self._match(ctx)
        yield  # pragma: no cover — makes plan() a generator

    def run_sequential(self, ctx):
        return self._match(ctx)


@dataclass
class QueryTicket:
    """Admission-to-completion record for one submitted query."""

    query: ServeQuery
    deadline: float | None = None
    priority: str = ""              # WFQ class (defaults to cls_name)
    status: str = "queued"          # queued | running | done | rejected
    reject_reason: str | None = None
    result: object = None
    cached: bool = False
    submitted_at: float = 0.0
    finished_at: float = 0.0
    windows: int = 0
    trunks: set | None = None       # trunk footprint of the plan's reads
    extras: dict = dataclass_field(default_factory=dict)

    @property
    def latency(self) -> float:
        """Submit-to-completion wall seconds (0 until finished)."""
        if self.status not in ("done", "rejected"):
            return 0.0
        return max(0.0, self.finished_at - self.submitted_at)
