"""Cross-query frontier fusion: one bulk read per window per op shape.

Per fusion window the scheduler hands this executor the pending
:class:`~repro.serve.queries.BatchOp` of every in-flight query, in
deterministic admission order.  Ops are grouped by ``(kind, field,
value)``; each group concatenates its id arrays and issues **one**
batched read against the memory cloud — ``outlinks_batch`` /
``inlinks_batch`` / ``field_eq_batch`` / ``read_field_batch`` — then
scatters the answer back to each op by its slice of the concatenation.
Ten concurrent BFS queries whose hop-3 frontiers overlap on the same
celebrity vertices thus pay one addressing pass, one trunk lookup and
one columnar decode for the union, not ten;
:meth:`repro.graph.api.Graph._bulk_spans` deduplicates the repeated ids
before hashing and routing.

The adjacency paths additionally consult the **hub cache**: vertices
whose decoded neighbor list met the degree threshold are kept — keyed by
``(kind, uid)`` so out-lists and in-lists of the same vertex never
collide — so later windows skip the cloud entirely for them.  Power-law
frontiers concentrate on exactly those vertices, which is why a small
LRU absorbs a large share of the decode volume.

When the scheduler runs on the per-trunk epoch vector, hub entries are
footprint-stamped with their one owning trunk, and ``run_window`` can
additionally report each op's *trunk footprint* — the set of trunks its
ids resolved through — which the scheduler folds into the query's
result-cache stamp.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from ..obs import get_registry
from ..utils.arrays import gather_ranges
from .caches import EpochLruCache
from .queries import BatchOp


class FusedExecutor:
    """Executes one window of batch ops with fusion and hub caching."""

    def __init__(self, graph, fuse: bool = True,
                 hub_cache: EpochLruCache | None = None,
                 hub_degree_threshold: int = 32,
                 registry=None):
        self.graph = graph
        self.fuse = fuse
        self.hub_cache = hub_cache
        self.hub_degree_threshold = hub_degree_threshold
        registry = (registry if registry is not None
                    else getattr(graph.cloud, "obs", None) or get_registry())
        self._m_windows = registry.counter("serve.fusion.windows")
        self._m_ops = registry.counter("serve.fusion.ops")
        self._m_rounds = registry.counter("serve.fusion.batch_rounds")
        self._m_fused_ids = registry.counter("serve.fusion.ids")
        self._m_hub_served = registry.counter("serve.fusion.hub_cells")

    def run_window(self, ops: list[BatchOp], epochs=None,
                   footprints: bool = False):
        """Results aligned one-to-one with ``ops``.

        ``epochs`` is the epoch token the scheduler pinned for this
        window (scalar or per-trunk vector; defaults to the cloud-global
        scalar).  With ``footprints=True`` returns ``(results, foots)``
        where ``foots[i]`` is the frozenset of trunk ids op *i*'s reads
        resolved through.
        """
        if epochs is None:
            epochs = self.graph.cloud.mutation_epoch()
        self._m_windows.inc()
        self._m_ops.inc(len(ops))
        results: list = [None] * len(ops)
        foots: list = [None] * len(ops)
        if self.fuse:
            groups: dict[tuple, list[int]] = {}
            for position, op in enumerate(ops):
                groups.setdefault(op.group_key(), []).append(position)
            for positions in groups.values():
                self._run_group([ops[p] for p in positions], positions,
                                results, epochs, foots if footprints
                                else None)
        else:
            # Fusion off: every op is its own bulk round (the query
            # still batches internally — this isolates the *cross-query*
            # sharing for the benchmark's ablation).
            for position, op in enumerate(ops):
                self._run_group([op], [position], results, epochs,
                                foots if footprints else None)
        if footprints:
            return results, foots
        return results

    # -- group execution ---------------------------------------------------

    def _run_group(self, group_ops: list[BatchOp], positions: list[int],
                   results: list, epochs, foots: list | None) -> None:
        kind = group_ops[0].kind
        ids = np.concatenate([op.ids for op in group_ops])
        offsets = np.cumsum([0] + [len(op.ids) for op in group_ops])
        self._m_rounds.inc()
        self._m_fused_ids.inc(len(ids))
        if kind in ("outlinks", "inlinks"):
            indptr, flat = self._adjacency(ids, kind, epochs)
            for op_index, position in enumerate(positions):
                lo, hi = offsets[op_index], offsets[op_index + 1]
                base = indptr[lo]
                results[position] = (indptr[lo:hi + 1] - base,
                                     flat[base:indptr[hi]])
        elif kind == "field_eq":
            op = group_ops[0]
            hits = self.graph.field_eq_batch(ids, op.field, op.value)
            for op_index, position in enumerate(positions):
                results[position] = hits[offsets[op_index]:
                                         offsets[op_index + 1]]
        elif kind == "field_read":
            values = self.graph.read_field_batch(ids, group_ops[0].field)
            for op_index, position in enumerate(positions):
                results[position] = values[offsets[op_index]:
                                           offsets[op_index + 1]]
        else:  # pragma: no cover — BatchOp validates kinds
            raise QueryError(f"unknown batch op kind {kind!r}")
        if foots is not None:
            # One vectorized owner pass for the whole group, sliced back
            # per op — every kind's dependency set is exactly the trunks
            # owning the ids it read.
            trunks = self.graph.cloud.trunks_of_array(ids)
            for op_index, position in enumerate(positions):
                lo, hi = offsets[op_index], offsets[op_index + 1]
                foots[position] = frozenset(
                    np.unique(trunks[lo:hi]).tolist())

    def _adjacency(self, ids: np.ndarray, kind: str,
                   epochs) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency for ``ids``, serving hubs from the cache."""
        reader = (self.graph.outlinks_batch if kind == "outlinks"
                  else self.graph.inlinks_batch)
        if self.hub_cache is None:
            return reader(ids)
        vector = not isinstance(epochs, int)
        unique, inverse = np.unique(ids, return_inverse=True)
        rows: list = [None] * len(unique)
        missing: list[int] = []
        for j, uid in enumerate(unique.tolist()):
            cached = self.hub_cache.get((kind, uid), epochs)
            if cached is None:
                missing.append(j)
            else:
                rows[j] = cached
        self._m_hub_served.inc(len(unique) - len(missing))
        if missing:
            miss_ids = unique[missing]
            miss_indptr, miss_flat = reader(miss_ids)
            owners = (self.graph.cloud.trunks_of_array(miss_ids)
                      if vector else None)
            for k, j in enumerate(missing):
                row = miss_flat[miss_indptr[k]:miss_indptr[k + 1]]
                rows[j] = row
                if len(row) >= self.hub_degree_threshold:
                    # A hub row depends only on the trunk owning the
                    # vertex — stamp just that component so unrelated
                    # writes leave it valid.
                    footprint = ((int(owners[k]),) if vector else None)
                    self.hub_cache.put((kind, int(unique[j])), epochs, row,
                                       footprint=footprint)
        counts = np.fromiter((len(row) for row in rows), dtype=np.int64,
                             count=len(rows))
        unique_indptr = np.zeros(len(unique) + 1, dtype=np.int64)
        np.cumsum(counts, out=unique_indptr[1:])
        if int(unique_indptr[-1]):
            unique_flat = np.concatenate(rows)
        else:
            unique_flat = np.empty(0, dtype=np.int64)
        sizes = counts[inverse]
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        flat = gather_ranges(unique_flat, unique_indptr[inverse], sizes)
        return indptr, flat
