"""Cross-query frontier fusion: one bulk read per window per op shape.

Per fusion window the scheduler hands this executor the pending
:class:`~repro.serve.queries.BatchOp` of every in-flight query, in
deterministic admission order.  Ops are grouped by ``(kind, field,
value)``; each group concatenates its id arrays and issues **one**
batched read against the memory cloud — ``outlinks_batch`` /
``field_eq_batch`` / ``read_field_batch`` — then scatters the answer
back to each op by its slice of the concatenation.  Ten concurrent BFS
queries whose hop-3 frontiers overlap on the same celebrity vertices
thus pay one addressing pass, one trunk lookup and one columnar decode
for the union, not ten; :meth:`repro.graph.api.Graph._bulk_spans`
deduplicates the repeated ids before hashing and routing.

The adjacency path additionally consults the **hub cache**: vertices
whose decoded out-list met the degree threshold are kept (epoch-stamped)
so later windows skip the cloud entirely for them.  Power-law frontiers
concentrate on exactly those vertices, which is why a small LRU absorbs
a large share of the decode volume.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from ..obs import get_registry
from ..utils.arrays import gather_ranges
from .caches import EpochLruCache
from .queries import BatchOp


class FusedExecutor:
    """Executes one window of batch ops with fusion and hub caching."""

    def __init__(self, graph, fuse: bool = True,
                 hub_cache: EpochLruCache | None = None,
                 hub_degree_threshold: int = 32,
                 registry=None):
        self.graph = graph
        self.fuse = fuse
        self.hub_cache = hub_cache
        self.hub_degree_threshold = hub_degree_threshold
        registry = (registry if registry is not None
                    else getattr(graph.cloud, "obs", None) or get_registry())
        self._m_windows = registry.counter("serve.fusion.windows")
        self._m_ops = registry.counter("serve.fusion.ops")
        self._m_rounds = registry.counter("serve.fusion.batch_rounds")
        self._m_fused_ids = registry.counter("serve.fusion.ids")
        self._m_hub_served = registry.counter("serve.fusion.hub_cells")

    def run_window(self, ops: list[BatchOp]) -> list:
        """Results aligned one-to-one with ``ops``."""
        self._m_windows.inc()
        self._m_ops.inc(len(ops))
        results: list = [None] * len(ops)
        if self.fuse:
            groups: dict[tuple, list[int]] = {}
            for position, op in enumerate(ops):
                groups.setdefault(op.group_key(), []).append(position)
            for positions in groups.values():
                self._run_group([ops[p] for p in positions], positions,
                                results)
        else:
            # Fusion off: every op is its own bulk round (the query
            # still batches internally — this isolates the *cross-query*
            # sharing for the benchmark's ablation).
            for position, op in enumerate(ops):
                self._run_group([op], [position], results)
        return results

    # -- group execution ---------------------------------------------------

    def _run_group(self, group_ops: list[BatchOp], positions: list[int],
                   results: list) -> None:
        kind = group_ops[0].kind
        ids = np.concatenate([op.ids for op in group_ops])
        offsets = np.cumsum([0] + [len(op.ids) for op in group_ops])
        self._m_rounds.inc()
        self._m_fused_ids.inc(len(ids))
        if kind == "outlinks":
            indptr, flat = self._outlinks(ids)
            for op_index, position in enumerate(positions):
                lo, hi = offsets[op_index], offsets[op_index + 1]
                base = indptr[lo]
                results[position] = (indptr[lo:hi + 1] - base,
                                     flat[base:indptr[hi]])
        elif kind == "field_eq":
            op = group_ops[0]
            hits = self.graph.field_eq_batch(ids, op.field, op.value)
            for op_index, position in enumerate(positions):
                results[position] = hits[offsets[op_index]:
                                         offsets[op_index + 1]]
        elif kind == "field_read":
            values = self.graph.read_field_batch(ids, group_ops[0].field)
            for op_index, position in enumerate(positions):
                results[position] = values[offsets[op_index]:
                                           offsets[op_index + 1]]
        else:  # pragma: no cover — BatchOp validates kinds
            raise QueryError(f"unknown batch op kind {kind!r}")

    def _outlinks(self, ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency for ``ids``, serving hubs from the cache."""
        if self.hub_cache is None:
            return self.graph.outlinks_batch(ids)
        epoch = self.graph.cloud.mutation_epoch()
        unique, inverse = np.unique(ids, return_inverse=True)
        rows: list = [None] * len(unique)
        missing: list[int] = []
        for j, uid in enumerate(unique.tolist()):
            cached = self.hub_cache.get(uid, epoch)
            if cached is None:
                missing.append(j)
            else:
                rows[j] = cached
        self._m_hub_served.inc(len(unique) - len(missing))
        if missing:
            miss_ids = unique[missing]
            miss_indptr, miss_flat = self.graph.outlinks_batch(miss_ids)
            for k, j in enumerate(missing):
                row = miss_flat[miss_indptr[k]:miss_indptr[k + 1]]
                rows[j] = row
                if len(row) >= self.hub_degree_threshold:
                    self.hub_cache.put(int(unique[j]), epoch, row)
        counts = np.fromiter((len(row) for row in rows), dtype=np.int64,
                             count=len(rows))
        unique_indptr = np.zeros(len(unique) + 1, dtype=np.int64)
        np.cumsum(counts, out=unique_indptr[1:])
        if int(unique_indptr[-1]):
            unique_flat = np.concatenate(rows)
        else:
            unique_flat = np.empty(0, dtype=np.int64)
        sizes = counts[inverse]
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(sizes, out=indptr[1:])
        flat = gather_ranges(unique_flat, unique_indptr[inverse], sizes)
        return indptr, flat
