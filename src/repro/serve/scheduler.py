"""Admission-controlled concurrent query serving over the memory cloud.

Trinity serves "online queries ... in real time" against the same
in-memory graph the offline engines compute on (Section 1); this module
is the serving front end for the reproduction: a cooperative scheduler
that keeps many queries in flight so their per-hop frontiers can be
**fused** into shared bulk reads, caches what power-law workloads repeat
(hub adjacency, whole query results), and defends latency with weighted
fair admission, bounded per-class queues and per-query deadlines.

Execution model — deterministic by construction:

* ``submit`` pushes onto a :class:`WeightedFairQueue` under the query's
  priority class.  Overflow — of the total bound or the per-class bound
  — first sheds already-expired entries, then rejects with
  ``queue_full``.
* ``run`` repeats **fusion windows** until idle.  A window pins the
  epoch token (the per-trunk vector, or the scalar global epoch under
  ``epoch_granularity="global"``), admits queries up to
  ``max_in_flight`` in weighted-fair order (expired deadlines reject
  with ``deadline``; result-cache hits complete on the spot), then steps
  every in-flight plan exactly once, in admission order, and hands the
  collected :class:`~repro.serve.queries.BatchOp` set to the
  :class:`~repro.serve.fusion.FusedExecutor` — one bulk read per op
  shape per window.  The executor reports each op's trunk footprint,
  which accumulates on the ticket and becomes the completed result's
  cache stamp: a later write to trunk 7 only invalidates results that
  actually read trunk 7.
* Mutations go through :meth:`QueryServer.mutate`, which drains all
  in-flight work first (a barrier): every query executes against one
  consistent graph version, and every trunk epoch bump invalidates
  exactly the epoch-stamped cache entries whose footprint it touches.

``cross_check=True`` shadow-replays **every** completion — fused,
cached, or inline — through the query's existing one-at-a-time library
path and raises :class:`~repro.memcloud.cloud.BulkPathDivergence` on any
difference, which is how the test suite proves the optimizations change
the speed and never the answers.

Latency SLOs land in ``serve.latency.seconds{cls=...}`` histograms and
queue health in ``serve.queue.depth{cls=...}`` gauges plus
``serve.queue.wait_seconds{cls=...}`` histograms;
:meth:`QueryServer.report` renders their ``summary()`` per class.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..algorithms.subgraph import LabelIndex, assign_labels
from ..errors import QueryError
from ..graph.csr import CsrTopology
from ..obs import get_registry
from .caches import EpochLruCache
from .fusion import FusedExecutor
from .queries import QueryTicket, ServeQuery

#: ~2x-resolution buckets from 10 µs to ~5 min: wall-clock query service
#: times at simulation scale.
LATENCY_BUCKETS = tuple(1e-5 * 2.0 ** e for e in range(25))


@dataclass
class ServeConfig:
    """Serving-layer knobs; the benchmark ablates ``fuse`` and caching."""

    fuse: bool = True                    # cross-query frontier fusion
    result_cache: bool = True            # keyed whole-result cache
    hub_cache: bool = True               # high-degree adjacency cache
    hub_degree_threshold: int = 32
    hub_cache_capacity: int = 4096
    result_cache_capacity: int = 1024
    max_in_flight: int = 64              # plans stepped per window
    queue_limit: int = 1024              # admission queue bound (total)
    class_queue_limit: int | None = None  # admission bound per class
    class_weights: dict | None = None    # WFQ weight per priority class
    default_deadline: float | None = None   # seconds in queue before reject
    sequential: bool = False             # baseline: one query at a time
    cross_check: bool = False            # shadow-replay every completion
    epoch_granularity: str = "trunk"     # "trunk" vector | "global" scalar

    def __post_init__(self):
        if self.epoch_granularity not in ("trunk", "global"):
            raise QueryError(
                f"epoch_granularity must be 'trunk' or 'global', "
                f"not {self.epoch_granularity!r}")


class WeightedFairQueue:
    """Deterministic weighted fair queueing over priority classes.

    Classic virtual-finish-time WFQ with unit-cost work items: a push
    into class *c* gets finish tag ``max(virtual_time, last_tag[c]) +
    1/weight[c]``; ``pop`` removes the globally smallest ``(tag, seq)``
    and advances virtual time to it.  A class with weight 2 therefore
    drains twice as fast as a weight-1 class under contention, an idle
    class never banks credit (its next tag starts at the current virtual
    time), and the ``seq`` tiebreak makes the whole order a pure
    function of the submission sequence — no randomness, no clock.
    """

    def __init__(self, weights: dict | None = None, registry=None):
        registry = registry if registry is not None else get_registry()
        self._registry = registry
        self._weights = dict(weights or {})
        for cls, weight in self._weights.items():
            if weight <= 0:
                raise QueryError(
                    f"class weight must be > 0 ({cls!r}: {weight!r})")
        self._queues: dict[str, deque] = {}
        self._last_tag: dict[str, float] = {}
        self._vtime = 0.0
        self._seq = 0
        self._len = 0
        self._depth_gauges: dict[str, object] = {}

    def weight(self, cls: str) -> float:
        return float(self._weights.get(cls, 1.0))

    def classes(self) -> list[str]:
        return sorted(self._queues)

    def depth(self, cls: str) -> int:
        queue = self._queues.get(cls)
        return len(queue) if queue is not None else 0

    def __len__(self) -> int:
        return self._len

    def _gauge(self, cls: str):
        gauge = self._depth_gauges.get(cls)
        if gauge is None:
            gauge = self._registry.gauge("serve.queue.depth", cls=cls)
            self._depth_gauges[cls] = gauge
        return gauge

    def push(self, ticket: QueryTicket) -> None:
        cls = ticket.priority
        tag = max(self._vtime, self._last_tag.get(cls, 0.0)) \
            + 1.0 / self.weight(cls)
        self._last_tag[cls] = tag
        self._seq += 1
        self._queues.setdefault(cls, deque()).append(
            (tag, self._seq, ticket))
        self._len += 1
        self._gauge(cls).set(len(self._queues[cls]))

    def pop(self) -> QueryTicket | None:
        """The queued ticket with the smallest (finish tag, seq)."""
        best_cls = None
        best = None
        for cls in sorted(self._queues):
            queue = self._queues[cls]
            if not queue:
                continue
            head = queue[0]
            if best is None or head[:2] < best[:2]:
                best, best_cls = head, cls
        if best is None:
            return None
        self._queues[best_cls].popleft()
        self._len -= 1
        self._gauge(best_cls).set(len(self._queues[best_cls]))
        self._vtime = max(self._vtime, best[0])
        return best[2]

    def shed_expired(self, now: float) -> list[QueryTicket]:
        """Remove every queued ticket whose deadline has passed."""
        shed: list[QueryTicket] = []
        for cls, queue in self._queues.items():
            kept: deque = deque()
            for entry in queue:
                ticket = entry[2]
                if (ticket.deadline is not None
                        and now - ticket.submitted_at > ticket.deadline):
                    shed.append(ticket)
                else:
                    kept.append(entry)
            if len(kept) != len(queue):
                self._queues[cls] = kept
                self._gauge(cls).set(len(kept))
        self._len -= len(shed)
        return shed


class ServeReport:
    """Per-class SLO summaries plus admission/queue/cache counters."""

    def __init__(self, classes: dict, admission: dict, caches: dict,
                 fusion: dict, queues: dict | None = None):
        self.classes = classes
        self.admission = admission
        self.caches = caches
        self.fusion = fusion
        self.queues = queues if queues is not None else {}

    def to_dict(self) -> dict:
        return {"classes": self.classes, "admission": self.admission,
                "caches": self.caches, "fusion": self.fusion,
                "queues": self.queues}

    def render(self) -> str:
        lines = ["query classes:"]
        for name in sorted(self.classes):
            s = self.classes[name]
            lines.append(
                f"  {name}: count={s['count']} mean={s['mean']:.2e}s "
                f"p50={s['p50']:.2e}s p99={s['p99']:.2e}s "
                f"max={s['max']:.2e}s")
        lines.append(
            "admission: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.admission.items())))
        for name in sorted(self.queues):
            q = self.queues[name]
            wait = q["wait"]
            lines.append(
                f"  queue {name}: depth={q['depth']} "
                f"weight={q['weight']:g} waited={wait['count']} "
                f"wait_p50={wait['p50']:.2e}s wait_p99={wait['p99']:.2e}s")
        for cache, stats in sorted(self.caches.items()):
            lines.append(
                f"cache {cache}: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(stats.items())))
        lines.append(
            "fusion: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.fusion.items())))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class QueryServer:
    """The serving loop: WFQ admission, fusion windows, caches, SLOs."""

    def __init__(self, graph, config: ServeConfig | None = None,
                 registry=None):
        self.graph = graph
        self.config = config or ServeConfig()
        self.registry = (registry if registry is not None
                         else getattr(graph.cloud, "obs", None)
                         or get_registry())
        cfg = self.config
        self.result_cache = (
            EpochLruCache("result", cfg.result_cache_capacity, self.registry)
            if cfg.result_cache else None)
        hub = (EpochLruCache("hub", cfg.hub_cache_capacity, self.registry)
               if cfg.hub_cache else None)
        self.executor = FusedExecutor(
            graph, fuse=cfg.fuse, hub_cache=hub,
            hub_degree_threshold=cfg.hub_degree_threshold,
            registry=self.registry)
        self._wfq = WeightedFairQueue(cfg.class_weights, self.registry)
        self._active: list[tuple[QueryTicket, object, object]] = []
        self._latency: dict[str, object] = {}
        self._queue_wait: dict[str, object] = {}
        self._current_epochs = self._epochs()
        self._m_submitted = self.registry.counter("serve.admission.submitted")
        self._m_admitted = self.registry.counter("serve.admission.admitted")
        self._m_rejected = {
            reason: self.registry.counter("serve.admission.rejected",
                                          reason=reason)
            for reason in ("queue_full", "deadline")
        }
        self._m_completed: dict[str, object] = {}
        self._m_cached = self.registry.counter("serve.completed.from_cache")
        self._m_windows = self.registry.counter("serve.windows")
        self._m_mutations = self.registry.counter("serve.mutations")
        self._m_cross_checks = self.registry.counter("serve.cross_checks")
        # Snapshot state for inline queries (subgraph matching): rebuilt
        # lazily whenever the cloud's mutation epoch moves.
        self._snapshot = None
        self._snapshot_epoch = None
        self._label_seed = 0
        self._num_labels = 20

    # -- epoch token -------------------------------------------------------

    def _epochs(self):
        """The validity token this window stamps and checks caches with:
        the per-trunk vector, or the scalar sum under the coarse
        ``epoch_granularity="global"`` scheme (kept for the benchmark's
        ablation of incremental repair)."""
        if self.config.epoch_granularity == "global":
            return self.graph.cloud.mutation_epoch()
        return self.graph.cloud.epoch_vector()

    # -- ctx surface handed to query plans ---------------------------------

    def snapshot(self):
        """``(topology, labels, index)`` for the current graph version."""
        epoch = self.graph.cloud.mutation_epoch()
        if self._snapshot is None or self._snapshot_epoch != epoch:
            topology = CsrTopology(self.graph)
            labels = assign_labels(topology.n, num_labels=self._num_labels,
                                   seed=self._label_seed)
            self._snapshot = (topology, labels,
                              LabelIndex(topology, labels))
            self._snapshot_epoch = epoch
        return self._snapshot

    # -- admission ---------------------------------------------------------

    def submit(self, query: ServeQuery, deadline: float | None = None,
               priority: str | None = None) -> QueryTicket:
        """Enqueue a query; returns its ticket (possibly already
        rejected when its class queue or the total bound is full).

        ``priority`` names the WFQ class the query competes in; it
        defaults to the query's ``cls_name``, so e.g. all TQL traffic
        shares one weight unless the caller splits it ("interactive" vs
        "batch").
        """
        if not isinstance(query, ServeQuery):
            raise QueryError("submit() takes a ServeQuery")
        ticket = QueryTicket(
            query=query,
            deadline=(deadline if deadline is not None
                      else self.config.default_deadline),
            priority=(priority if priority is not None else query.cls_name),
            submitted_at=time.perf_counter(),
        )
        self._m_submitted.inc()
        if self._full(ticket.priority):
            # Make room from already-dead entries before turning anyone
            # away: shed queued tickets past their deadline.
            for expired in self._wfq.shed_expired(time.perf_counter()):
                self._reject(expired, "deadline")
            if self._full(ticket.priority):
                self._reject(ticket, "queue_full")
                return ticket
        self._wfq.push(ticket)
        return ticket

    def _full(self, cls: str) -> bool:
        if len(self._wfq) >= self.config.queue_limit:
            return True
        limit = self.config.class_queue_limit
        return limit is not None and self._wfq.depth(cls) >= limit

    def _reject(self, ticket: QueryTicket, reason: str) -> None:
        ticket.status = "rejected"
        ticket.reject_reason = reason
        ticket.finished_at = time.perf_counter()
        self._m_rejected[reason].inc()

    # -- the serving loop --------------------------------------------------

    def run(self) -> None:
        """Process fusion windows until queue and in-flight set drain."""
        # Mutations only happen at the mutate() barrier (which refreshes
        # the token itself), never mid-run, so one epoch read covers
        # every window of this drain: cache gets at admission, result
        # stamps at completion and the executor's hub stamps all see the
        # same epochs.  Reading it here (not per window) keeps the
        # O(trunk_count) vector build off the per-query fast path.
        self._current_epochs = self._epochs()
        while len(self._wfq) or self._active:
            self._window()

    def _window(self) -> None:
        self._m_windows.inc()
        self._admit()
        if not self._active:
            return
        if self.config.sequential:
            # Baseline mode: the window holds exactly one query and it
            # runs to completion through the library path — the
            # one-at-a-time server every optimization is measured
            # against.
            ticket, _gen, _op = self._active.pop(0)
            result = ticket.query.run_sequential(self)
            self._complete(ticket, result)
            return
        ops = [op for _ticket, _gen, op in self._active]
        want_foot = (self.result_cache is not None
                     and isinstance(self._current_epochs, tuple))
        if want_foot:
            results, foots = self.executor.run_window(
                ops, epochs=self._current_epochs, footprints=True)
        else:
            results = self.executor.run_window(
                ops, epochs=self._current_epochs)
            foots = [None] * len(ops)
        still_active = []
        for (ticket, gen, _op), result, foot in zip(self._active, results,
                                                    foots):
            ticket.windows += 1
            if foot is not None:
                if ticket.trunks is None:
                    ticket.trunks = set()
                ticket.trunks |= foot
            try:
                next_op = gen.send(result)
            except StopIteration as stop:
                self._complete(ticket, stop.value)
            else:
                still_active.append((ticket, gen, next_op))
        self._active = still_active

    def _admit(self) -> None:
        limit = 1 if self.config.sequential else self.config.max_in_flight
        while len(self._wfq) and len(self._active) < limit:
            ticket = self._wfq.pop()
            now = time.perf_counter()
            self._observe_wait(ticket, now)
            if (ticket.deadline is not None
                    and now - ticket.submitted_at > ticket.deadline):
                self._reject(ticket, "deadline")
                continue
            self._m_admitted.inc()
            ticket.status = "running"
            if self.result_cache is not None:
                hit = self.result_cache.get(ticket.query.key(),
                                            self._current_epochs)
                if hit is not None:
                    ticket.cached = True
                    self._m_cached.inc()
                    self._complete(ticket, hit)
                    continue
            if self.config.sequential:
                self._active.append((ticket, None, None))
                continue
            gen = ticket.query.plan(self)
            try:
                first_op = gen.send(None)
            except StopIteration as stop:
                # Inline queries (subgraph, non-fusible TQL) finish on
                # their first step.
                self._complete(ticket, stop.value)
            else:
                self._active.append((ticket, gen, first_op))

    def _observe_wait(self, ticket: QueryTicket, now: float) -> None:
        cls = ticket.priority
        hist = self._queue_wait.get(cls)
        if hist is None:
            hist = self.registry.histogram(
                "serve.queue.wait_seconds", buckets=LATENCY_BUCKETS, cls=cls)
            self._queue_wait[cls] = hist
        hist.observe(max(0.0, now - ticket.submitted_at))

    # -- completion --------------------------------------------------------

    def _complete(self, ticket: QueryTicket, result) -> None:
        ticket.result = result
        ticket.status = "done"
        ticket.finished_at = time.perf_counter()
        cls = ticket.query.cls_name
        if cls not in self._latency:
            self._latency[cls] = self.registry.histogram(
                "serve.latency.seconds", buckets=LATENCY_BUCKETS, cls=cls)
            self._m_completed[cls] = self.registry.counter(
                "serve.completed", cls=cls)
        self._latency[cls].observe(ticket.latency)
        self._m_completed[cls].inc()
        if self.result_cache is not None and not ticket.cached:
            footprint = None
            if (ticket.trunks is not None
                    and isinstance(self._current_epochs, tuple)):
                # The plan's reads all resolved through these trunks —
                # the entry survives writes to every other trunk.
                footprint = sorted(ticket.trunks)
            self.result_cache.put(ticket.query.key(), self._current_epochs,
                                  result, footprint=footprint)
        if self.config.cross_check:
            self._m_cross_checks.inc()
            reference = ticket.query.run_sequential(self)
            ticket.query.check(result, reference)

    # -- mutation barrier --------------------------------------------------

    def mutate(self, fn) -> None:
        """Drain in-flight queries, then apply ``fn(graph)``.

        The barrier gives every query one consistent graph version; the
        mutation itself bumps the owning trunks' epochs through the
        normal cloud paths, so cache entries whose footprint touches
        those trunks — and only those — go stale.
        """
        self.run()
        self._m_mutations.inc()
        fn(self.graph)
        self._current_epochs = self._epochs()

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServeReport:
        classes = {cls: hist.summary()
                   for cls, hist in sorted(self._latency.items())}
        admission = {
            "submitted": self._m_submitted.value,
            "admitted": self._m_admitted.value,
            "rejected_queue_full": self._m_rejected["queue_full"].value,
            "rejected_deadline": self._m_rejected["deadline"].value,
            "completed_from_cache": self._m_cached.value,
        }
        queues = {}
        for cls in sorted(set(self._queue_wait) | set(self._wfq.classes())):
            wait = self._queue_wait.get(cls)
            queues[cls] = {
                "depth": self._wfq.depth(cls),
                "weight": self._wfq.weight(cls),
                "wait": (wait.summary() if wait is not None
                         else {"count": 0, "mean": 0.0, "p50": 0.0,
                               "p99": 0.0, "max": 0.0}),
            }
        caches = {}
        if self.result_cache is not None:
            caches["result"] = {
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "invalidated": self.result_cache.invalidated,
                "cleared": self.result_cache.cleared,
                "size": len(self.result_cache),
            }
        hub = self.executor.hub_cache
        if hub is not None:
            caches["hub"] = {
                "hits": hub.hits, "misses": hub.misses,
                "invalidated": hub.invalidated, "cleared": hub.cleared,
                "size": len(hub),
            }
        fusion = {
            "windows": self._m_windows.value,
            "ops": self.executor._m_ops.value,
            "batch_rounds": self.executor._m_rounds.value,
            "fused_ids": self.executor._m_fused_ids.value,
            "hub_cells": self.executor._m_hub_served.value,
        }
        return ServeReport(classes, admission, caches, fusion, queues)
