"""Admission-controlled concurrent query serving over the memory cloud.

Trinity serves "online queries ... in real time" against the same
in-memory graph the offline engines compute on (Section 1); this module
is the serving front end for the reproduction: a cooperative scheduler
that keeps many queries in flight so their per-hop frontiers can be
**fused** into shared bulk reads, caches what power-law workloads repeat
(hub adjacency, whole query results), and defends latency with bounded
admission and per-query deadlines.

Execution model — deterministic by construction:

* ``submit`` appends to a bounded admission queue (overflow is rejected
  immediately with ``queue_full``).
* ``run`` repeats **fusion windows** until idle.  A window admits
  queries up to ``max_in_flight`` (expired deadlines reject with
  ``deadline``; result-cache hits complete on the spot), then steps
  every in-flight plan exactly once, in admission order, and hands the
  collected :class:`~repro.serve.queries.BatchOp` set to the
  :class:`~repro.serve.fusion.FusedExecutor` — one bulk read per op
  shape per window.
* Mutations go through :meth:`QueryServer.mutate`, which drains all
  in-flight work first (a barrier): every query executes against one
  consistent graph version, and every trunk epoch bump invalidates the
  epoch-stamped caches for the queries that follow.

``cross_check=True`` shadow-replays **every** completion — fused,
cached, or inline — through the query's existing one-at-a-time library
path and raises :class:`~repro.memcloud.cloud.BulkPathDivergence` on any
difference, which is how the test suite proves the three optimizations
change the speed and never the answers.

Latency SLOs land in ``serve.latency.seconds{cls=...}`` histograms;
:meth:`QueryServer.report` renders their ``summary()`` (count / mean /
p50 / p99 / max) per query class.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass

from ..algorithms.subgraph import LabelIndex, assign_labels
from ..errors import QueryError
from ..graph.csr import CsrTopology
from ..obs import get_registry
from .caches import EpochLruCache
from .fusion import FusedExecutor
from .queries import QueryTicket, ServeQuery

#: ~2x-resolution buckets from 10 µs to ~5 min: wall-clock query service
#: times at simulation scale.
LATENCY_BUCKETS = tuple(1e-5 * 2.0 ** e for e in range(25))


@dataclass
class ServeConfig:
    """Serving-layer knobs; the benchmark ablates ``fuse`` and caching."""

    fuse: bool = True                    # cross-query frontier fusion
    result_cache: bool = True            # keyed whole-result cache
    hub_cache: bool = True               # high-degree adjacency cache
    hub_degree_threshold: int = 32
    hub_cache_capacity: int = 4096
    result_cache_capacity: int = 1024
    max_in_flight: int = 64              # plans stepped per window
    queue_limit: int = 1024              # admission queue bound
    default_deadline: float | None = None   # seconds in queue before reject
    sequential: bool = False             # baseline: one query at a time
    cross_check: bool = False            # shadow-replay every completion


class ServeReport:
    """Per-class SLO summaries plus admission/cache counters."""

    def __init__(self, classes: dict, admission: dict, caches: dict,
                 fusion: dict):
        self.classes = classes
        self.admission = admission
        self.caches = caches
        self.fusion = fusion

    def to_dict(self) -> dict:
        return {"classes": self.classes, "admission": self.admission,
                "caches": self.caches, "fusion": self.fusion}

    def render(self) -> str:
        lines = ["query classes:"]
        for name in sorted(self.classes):
            s = self.classes[name]
            lines.append(
                f"  {name}: count={s['count']} mean={s['mean']:.2e}s "
                f"p50={s['p50']:.2e}s p99={s['p99']:.2e}s "
                f"max={s['max']:.2e}s")
        lines.append(
            "admission: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.admission.items())))
        for cache, stats in sorted(self.caches.items()):
            lines.append(
                f"cache {cache}: " + ", ".join(
                    f"{k}={v}" for k, v in sorted(stats.items())))
        lines.append(
            "fusion: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.fusion.items())))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class QueryServer:
    """The serving loop: admission queue, fusion windows, caches, SLOs."""

    def __init__(self, graph, config: ServeConfig | None = None,
                 registry=None):
        self.graph = graph
        self.config = config or ServeConfig()
        self.registry = (registry if registry is not None
                         else getattr(graph.cloud, "obs", None)
                         or get_registry())
        cfg = self.config
        self.result_cache = (
            EpochLruCache("result", cfg.result_cache_capacity, self.registry)
            if cfg.result_cache else None)
        hub = (EpochLruCache("hub", cfg.hub_cache_capacity, self.registry)
               if cfg.hub_cache else None)
        self.executor = FusedExecutor(
            graph, fuse=cfg.fuse, hub_cache=hub,
            hub_degree_threshold=cfg.hub_degree_threshold,
            registry=self.registry)
        self._queue: deque[QueryTicket] = deque()
        self._active: list[tuple[QueryTicket, object, object]] = []
        self._latency: dict[str, object] = {}
        self._m_submitted = self.registry.counter("serve.admission.submitted")
        self._m_admitted = self.registry.counter("serve.admission.admitted")
        self._m_rejected = {
            reason: self.registry.counter("serve.admission.rejected",
                                          reason=reason)
            for reason in ("queue_full", "deadline")
        }
        self._m_completed: dict[str, object] = {}
        self._m_cached = self.registry.counter("serve.completed.from_cache")
        self._m_windows = self.registry.counter("serve.windows")
        self._m_mutations = self.registry.counter("serve.mutations")
        self._m_cross_checks = self.registry.counter("serve.cross_checks")
        # Snapshot state for inline queries (subgraph matching): rebuilt
        # lazily whenever the cloud's mutation epoch moves.
        self._snapshot = None
        self._snapshot_epoch = None
        self._label_seed = 0
        self._num_labels = 20

    # -- ctx surface handed to query plans ---------------------------------

    def snapshot(self):
        """``(topology, labels, index)`` for the current graph version."""
        epoch = self.graph.cloud.mutation_epoch()
        if self._snapshot is None or self._snapshot_epoch != epoch:
            topology = CsrTopology(self.graph)
            labels = assign_labels(topology.n, num_labels=self._num_labels,
                                   seed=self._label_seed)
            self._snapshot = (topology, labels,
                              LabelIndex(topology, labels))
            self._snapshot_epoch = epoch
        return self._snapshot

    # -- admission ---------------------------------------------------------

    def submit(self, query: ServeQuery,
               deadline: float | None = None) -> QueryTicket:
        """Enqueue a query; returns its ticket (possibly already
        rejected when the admission queue is full)."""
        if not isinstance(query, ServeQuery):
            raise QueryError("submit() takes a ServeQuery")
        ticket = QueryTicket(
            query=query,
            deadline=(deadline if deadline is not None
                      else self.config.default_deadline),
            submitted_at=time.perf_counter(),
        )
        self._m_submitted.inc()
        if len(self._queue) >= self.config.queue_limit:
            self._reject(ticket, "queue_full")
            return ticket
        self._queue.append(ticket)
        return ticket

    def _reject(self, ticket: QueryTicket, reason: str) -> None:
        ticket.status = "rejected"
        ticket.reject_reason = reason
        ticket.finished_at = time.perf_counter()
        self._m_rejected[reason].inc()

    # -- the serving loop --------------------------------------------------

    def run(self) -> None:
        """Process fusion windows until queue and in-flight set drain."""
        while self._queue or self._active:
            self._window()

    def _window(self) -> None:
        self._m_windows.inc()
        self._admit()
        if not self._active:
            return
        if self.config.sequential:
            # Baseline mode: the window holds exactly one query and it
            # runs to completion through the library path — the
            # one-at-a-time server every optimization is measured
            # against.
            ticket, _gen, _op = self._active.pop(0)
            result = ticket.query.run_sequential(self)
            self._complete(ticket, result)
            return
        ops = [op for _ticket, _gen, op in self._active]
        results = self.executor.run_window(ops)
        still_active = []
        for (ticket, gen, _op), result in zip(self._active, results):
            ticket.windows += 1
            try:
                next_op = gen.send(result)
            except StopIteration as stop:
                self._complete(ticket, stop.value)
            else:
                still_active.append((ticket, gen, next_op))
        self._active = still_active

    def _admit(self) -> None:
        limit = 1 if self.config.sequential else self.config.max_in_flight
        while self._queue and len(self._active) < limit:
            ticket = self._queue.popleft()
            now = time.perf_counter()
            if (ticket.deadline is not None
                    and now - ticket.submitted_at > ticket.deadline):
                self._reject(ticket, "deadline")
                continue
            self._m_admitted.inc()
            ticket.status = "running"
            if self.result_cache is not None:
                epoch = self.graph.cloud.mutation_epoch()
                hit = self.result_cache.get(ticket.query.key(), epoch)
                if hit is not None:
                    ticket.cached = True
                    self._m_cached.inc()
                    self._complete(ticket, hit)
                    continue
            if self.config.sequential:
                self._active.append((ticket, None, None))
                continue
            gen = ticket.query.plan(self)
            try:
                first_op = gen.send(None)
            except StopIteration as stop:
                # Inline queries (subgraph, non-fusible TQL) finish on
                # their first step.
                self._complete(ticket, stop.value)
            else:
                self._active.append((ticket, gen, first_op))

    # -- completion --------------------------------------------------------

    def _complete(self, ticket: QueryTicket, result) -> None:
        ticket.result = result
        ticket.status = "done"
        ticket.finished_at = time.perf_counter()
        cls = ticket.query.cls_name
        if cls not in self._latency:
            self._latency[cls] = self.registry.histogram(
                "serve.latency.seconds", buckets=LATENCY_BUCKETS, cls=cls)
            self._m_completed[cls] = self.registry.counter(
                "serve.completed", cls=cls)
        self._latency[cls].observe(ticket.latency)
        self._m_completed[cls].inc()
        if self.result_cache is not None and not ticket.cached:
            self.result_cache.put(ticket.query.key(),
                                  self.graph.cloud.mutation_epoch(), result)
        if self.config.cross_check:
            self._m_cross_checks.inc()
            reference = ticket.query.run_sequential(self)
            ticket.query.check(result, reference)

    # -- mutation barrier --------------------------------------------------

    def mutate(self, fn) -> None:
        """Drain in-flight queries, then apply ``fn(graph)``.

        The barrier gives every query one consistent graph version; the
        mutation itself bumps trunk epochs through the normal cloud
        paths, so both caches treat everything recorded before it as
        stale.
        """
        self.run()
        self._m_mutations.inc()
        fn(self.graph)

    # -- reporting ---------------------------------------------------------

    def report(self) -> ServeReport:
        classes = {cls: hist.summary()
                   for cls, hist in sorted(self._latency.items())}
        admission = {
            "submitted": self._m_submitted.value,
            "admitted": self._m_admitted.value,
            "rejected_queue_full": self._m_rejected["queue_full"].value,
            "rejected_deadline": self._m_rejected["deadline"].value,
            "completed_from_cache": self._m_cached.value,
        }
        caches = {}
        if self.result_cache is not None:
            caches["result"] = {
                "hits": self.result_cache.hits,
                "misses": self.result_cache.misses,
                "invalidated": self.result_cache.invalidated,
                "size": len(self.result_cache),
            }
        hub = self.executor.hub_cache
        if hub is not None:
            caches["hub"] = {
                "hits": hub.hits, "misses": hub.misses,
                "invalidated": hub.invalidated, "size": len(hub),
            }
        fusion = {
            "windows": self._m_windows.value,
            "ops": self.executor._m_ops.value,
            "batch_rounds": self.executor._m_rounds.value,
            "fused_ids": self.executor._m_fused_ids.value,
            "hub_cells": self.executor._m_hub_served.value,
        }
        return ServeReport(classes, admission, caches, fusion)
