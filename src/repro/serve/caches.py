"""Epoch-stamped LRU caches for the query-serving layer.

Both serving caches — the hub-vertex adjacency cache and the keyed
query-result cache — share one correctness rule: an entry is only valid
while every trunk epoch it was recorded against is unchanged.  Every
structural mutation anywhere in the memory cloud (a put, an in-place
accessor write, a remove, a defragmentation pass, a trunk resize) bumps
the owning trunk's ``mutation_epoch``; the cloud exposes those counters
as a per-trunk vector (:meth:`repro.memcloud.cloud.MemoryCloud.
epoch_vector`).

Entries come in two validity granularities:

* **footprint-stamped** — ``put(..., footprint=trunk_ids)`` records the
  epoch of exactly the trunks the value was decoded from.  A write to
  trunk 7 only invalidates entries whose footprint includes trunk 7;
  everything else stays provably fresh.  Hub-adjacency entries stamp
  their one owning trunk; query-result entries stamp the trunk set their
  plan's batch reads resolved through.
* **full-stamped** — no footprint: the entry records the entire epoch
  token (the whole vector, or a scalar cloud-global epoch for callers
  still on the coarse scheme).  *Any* mutation anywhere invalidates it —
  the only safe rule for inline plans whose reads are not footprintable
  (subgraph matching over a snapshot, inline TQL backtracking).

Staleness stays impossible rather than unlikely — the serving layer's
``cross_check`` mode proves it by shadow-replaying cached answers.
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs import get_registry

#: Stamp tags: a full stamp compares its whole token for equality, a
#: partial (footprint) stamp compares only its recorded trunk components.
_FULL = 0
_PART = 1


class EpochLruCache:
    """LRU mapping of hashable keys to values with per-trunk validity.

    ``get`` with a current epoch token under which the entry's stamp no
    longer validates counts an invalidation and behaves as a miss (the
    entry is dropped); ``put`` beyond ``capacity`` evicts the least
    recently used entry.  Hit/miss/invalidation/eviction/clear counters
    land under ``serve.cache.*`` labelled with the cache's name.

    The epoch token passed to ``get``/``put`` is either the cloud's
    per-trunk epoch vector (a sequence indexed by trunk id) or a scalar
    cloud-global epoch; ``footprint`` (an iterable of trunk ids) is only
    meaningful with a vector token and restricts the entry's validity to
    those components.
    """

    def __init__(self, name: str, capacity: int, registry=None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        registry = registry if registry is not None else get_registry()
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[object, tuple[tuple, object]] = (
            OrderedDict())
        self._m_hits = registry.counter("serve.cache.hits", cache=name)
        self._m_misses = registry.counter("serve.cache.misses", cache=name)
        self._m_invalidated = registry.counter(
            "serve.cache.invalidated", cache=name)
        self._m_evicted = registry.counter("serve.cache.evicted", cache=name)
        self._m_cleared = registry.counter("serve.cache.cleared", cache=name)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    @staticmethod
    def _stamp(epochs, footprint) -> tuple:
        if footprint is None or isinstance(epochs, int):
            token = (epochs if isinstance(epochs, int) else tuple(epochs))
            return (_FULL, token)
        return (_PART, tuple(sorted(
            (int(t), int(epochs[int(t)])) for t in set(footprint))))

    @staticmethod
    def _valid(stamp: tuple, epochs) -> bool:
        tag, recorded = stamp
        if tag == _FULL:
            current = (epochs if isinstance(epochs, int) else tuple(epochs))
            return recorded == current
        if isinstance(epochs, int):
            # A footprint stamp cannot validate against a scalar token.
            return False
        return all(epochs[trunk] == epoch for trunk, epoch in recorded)

    def get(self, key, epochs):
        """The cached value, or None on miss / stale entry.

        ``epochs`` is the *current* epoch token — the cloud's per-trunk
        vector or a scalar global epoch.
        """
        entry = self._entries.get(key)
        if entry is None:
            self._m_misses.inc()
            return None
        stamp, value = entry
        if not self._valid(stamp, epochs):
            # A trunk this value was decoded from mutated since it was
            # recorded: the bytes may have changed or moved.
            del self._entries[key]
            self._m_invalidated.inc()
            self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._m_hits.inc()
        return value

    def put(self, key, epochs, value, footprint=None) -> None:
        """Record ``value`` as valid for the given epoch token.

        ``footprint`` — trunk ids the value depends on — narrows the
        stamp to those vector components; without it (or with a scalar
        token) the entry is invalidated by any mutation anywhere.
        """
        self._entries[key] = (self._stamp(epochs, footprint), value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._m_evicted.inc()

    def footprint_of(self, key) -> frozenset | None:
        """The trunk footprint an entry was stamped with (None when the
        entry is full-stamped or absent) — introspection for tests and
        invalidation-storm debugging."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        tag, recorded = entry[0]
        if tag != _PART:
            return None
        return frozenset(trunk for trunk, _epoch in recorded)

    def clear(self) -> None:
        """Drop every entry, recording the count under
        ``serve.cache.cleared`` so invalidation storms show up in
        ``:metrics`` instead of passing silently."""
        self._m_cleared.inc(len(self._entries))
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def invalidated(self) -> int:
        return self._m_invalidated.value

    @property
    def cleared(self) -> int:
        return self._m_cleared.value
