"""Epoch-stamped LRU caches for the query-serving layer.

Both serving caches — the hub-vertex adjacency cache and the keyed
query-result cache — share one correctness rule: an entry is only valid
for the exact cloud mutation epoch it was recorded under.  Every
structural mutation anywhere in the memory cloud (a put, an in-place
accessor write, a remove, a defragmentation pass, a trunk resize) bumps
the owning trunk's ``mutation_epoch``; the cloud-wide epoch is the sum
over trunks (:meth:`repro.memcloud.cloud.MemoryCloud.mutation_epoch`),
so *any* mutation makes every cached entry unreachable.  Coarse, but it
makes staleness impossible rather than unlikely — the serving layer's
``cross_check`` mode then proves it by shadow-replaying cached answers.
"""

from __future__ import annotations

from collections import OrderedDict

from ..obs import get_registry


class EpochLruCache:
    """LRU mapping of hashable keys to values, valid for one epoch each.

    ``get`` with a current epoch that differs from the entry's stamp
    counts an invalidation and behaves as a miss (the entry is dropped);
    ``put`` beyond ``capacity`` evicts the least recently used entry.
    Hit/miss/invalidation/eviction counters land under
    ``serve.cache.*`` labelled with the cache's name.
    """

    def __init__(self, name: str, capacity: int, registry=None):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        registry = registry if registry is not None else get_registry()
        self.name = name
        self.capacity = capacity
        self._entries: OrderedDict[object, tuple[int, object]] = OrderedDict()
        self._m_hits = registry.counter("serve.cache.hits", cache=name)
        self._m_misses = registry.counter("serve.cache.misses", cache=name)
        self._m_invalidated = registry.counter(
            "serve.cache.invalidated", cache=name)
        self._m_evicted = registry.counter("serve.cache.evicted", cache=name)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key, epoch: int):
        """The cached value, or None on miss / stale entry."""
        entry = self._entries.get(key)
        if entry is None:
            self._m_misses.inc()
            return None
        stamped, value = entry
        if stamped != epoch:
            # The cloud mutated since this was recorded: the bytes the
            # value was decoded from may have changed or moved.
            del self._entries[key]
            self._m_invalidated.inc()
            self._m_misses.inc()
            return None
        self._entries.move_to_end(key)
        self._m_hits.inc()
        return value

    def put(self, key, epoch: int, value) -> None:
        self._entries[key] = (epoch, value)
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._m_evicted.inc()

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._m_hits.value

    @property
    def misses(self) -> int:
        return self._m_misses.value

    @property
    def invalidated(self) -> int:
        return self._m_invalidated.value
