"""Concurrent query serving over the memory cloud (the online front end).

Trinity's defining claim is that one in-memory graph serves *online*
queries in real time while supporting offline analytics (Section 1).
``repro.serve`` is the online half at serving concurrency: an
admission-controlled cooperative scheduler keeps many people-search /
TQL / subgraph / BFS queries in flight, fuses their per-hop frontiers
into shared bulk reads against the memory cloud, caches hub adjacency
and whole query results under mutation-epoch validity, and accounts
per-class latency SLOs.

Pieces:

* :mod:`~repro.serve.queries` — resumable query plans
  (:class:`PeopleSearchQuery`, :class:`TqlServeQuery`,
  :class:`LandmarkBfsQuery`, :class:`SubgraphServeQuery`) yielding
  :class:`BatchOp` read requests, each with a sequential library oracle.
* :mod:`~repro.serve.fusion` — :class:`FusedExecutor`, one bulk read per
  op shape per window plus the hub-vertex cache.
* :mod:`~repro.serve.caches` — :class:`EpochLruCache`, LRU entries valid
  while the per-trunk epochs they were stamped with are unchanged
  (full-vector stamps or exact trunk footprints).
* :mod:`~repro.serve.scheduler` — :class:`QueryServer`,
  :class:`ServeConfig`, :class:`ServeReport`,
  :class:`WeightedFairQueue`: weighted fair admission, fusion windows,
  the mutation barrier, cross-check replay and SLO reporting.
"""

from .caches import EpochLruCache
from .fusion import FusedExecutor
from .queries import (
    BatchOp,
    LandmarkBfsQuery,
    PeopleSearchQuery,
    QueryTicket,
    ServeQuery,
    SubgraphServeQuery,
    TqlServeQuery,
)
from .scheduler import (
    LATENCY_BUCKETS,
    QueryServer,
    ServeConfig,
    ServeReport,
    WeightedFairQueue,
)

__all__ = [
    "BatchOp",
    "EpochLruCache",
    "FusedExecutor",
    "LandmarkBfsQuery",
    "LATENCY_BUCKETS",
    "PeopleSearchQuery",
    "QueryServer",
    "QueryTicket",
    "ServeConfig",
    "ServeQuery",
    "ServeReport",
    "SubgraphServeQuery",
    "TqlServeQuery",
    "WeightedFairQueue",
]
