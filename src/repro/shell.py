"""An interactive TQL shell over a demo Trinity deployment.

Usage::

    python -m repro.shell                  # interactive prompt
    python -m repro.shell --people 5000    # bigger demo graph
    echo "MATCH (a = 0) -[Friends]-> (b) RETURN b" | python -m repro.shell

Builds a named social graph in a simulated cluster and evaluates TQL
queries against it, printing rows and the simulated execution cost.
Meta-commands: ``:help``, ``:stats``, ``:metrics``, ``:node <id>``,
``:quit``.
"""

from __future__ import annotations

import argparse
import sys

from .config import ClusterConfig, MemoryParams
from .errors import TrinityError
from .generators.social import build_social_graph
from .memcloud import MemoryCloud
from .obs import MetricsReport
from .tql import execute_tql

_BANNER = """Trinity TQL shell — {nodes} people, {edges} friendships, \
{machines} machines
type a TQL query (MATCH ... RETURN ...), :help for commands, :quit to exit"""

_HELP = """commands:
  :help            this message
  :stats           memory-cloud statistics
  :metrics [pfx]   dump recorded metrics (optionally filtered by prefix)
  :node <id>       dump one person's cell
  :quit            exit
example queries:
  MATCH (a = 0) -[Friends]-> (b) RETURN b, b.Name
  MATCH (a = 0) -[Friends*1..3]-> (b {Name: 'David'}) RETURN b LIMIT 10
  MATCH (a) -[Friends]-> (b) WHERE a < b RETURN a, b LIMIT 5"""


def build_demo(people: int, machines: int, seed: int):
    cloud = MemoryCloud(ClusterConfig(
        machines=machines, trunk_bits=8,
        memory=MemoryParams(trunk_size=32 * 1024 * 1024),
    ))
    graph = build_social_graph(cloud, people, avg_degree=12, seed=seed)
    return cloud, graph


def handle_meta(command: str, cloud, graph, out) -> bool:
    """Execute a :meta command; returns False for :quit."""
    parts = command.split()
    if parts[0] == ":quit":
        return False
    if parts[0] == ":help":
        print(_HELP, file=out)
    elif parts[0] == ":stats":
        print(f"cells: {len(cloud)}  live bytes: "
              f"{cloud.total_live_bytes()}  committed: "
              f"{cloud.total_committed_bytes()}", file=out)
        for machine in range(cloud.config.machines):
            stats = cloud.machine_stats(machine)
            print(f"  machine {machine}: {stats.cell_count} cells, "
                  f"{stats.live_bytes} live bytes", file=out)
    elif parts[0] == ":metrics":
        report = MetricsReport.from_registry(cloud.obs).nonzero()
        if len(parts) == 2:
            report = report.filter(parts[1])
        print(report.render(), file=out)
    elif parts[0] == ":node" and len(parts) == 2:
        try:
            node = int(parts[1])
            print(graph.node(node), file=out)
        except (ValueError, TrinityError) as exc:
            print(f"error: {exc}", file=out)
    else:
        print(f"unknown command {command!r}; :help for help", file=out)
    return True


def run_query(graph, text: str, out) -> None:
    try:
        result = execute_tql(graph, text)
    except TrinityError as exc:
        print(f"error: {exc}", file=out)
        return
    for row in result.rows[:50]:
        print("  " + ", ".join(str(cell) for cell in row), file=out)
    suffix = " (truncated)" if result.truncated else ""
    print(f"-- {len(result.rows)} rows, {result.cells_touched} cells "
          f"touched, simulated {result.elapsed * 1e3:.2f} ms{suffix}",
          file=out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--people", type=int, default=2000)
    parser.add_argument("--machines", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    cloud, graph = build_demo(args.people, args.machines, args.seed)
    out = sys.stdout
    interactive = sys.stdin.isatty()
    if interactive:
        print(_BANNER.format(nodes=graph.num_nodes,
                             edges=graph.num_edges(),
                             machines=args.machines), file=out)
    while True:
        if interactive:
            try:
                line = input("tql> ")
            except (EOFError, KeyboardInterrupt):
                break
        else:
            line = sys.stdin.readline()
            if not line:
                break
        line = line.strip()
        if not line:
            continue
        if line.startswith(":"):
            if not handle_meta(line, cloud, graph, out):
                break
        else:
            run_query(graph, line, out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
