"""Weighted graphs: per-edge data stored beside the cell ids (Section 4.1).

"Additional data associated with an edge (e.g., its name, type, weight,
etc.) can simply stay with the cellid as (cellid, associatedData) pairs."
The weighted schema keeps a ``List<double> Weights`` parallel to the
adjacency list inside the same node cell — one blob read serves both —
and the builder/topology plumbing carries the weights through to the
weighted analytics (:func:`repro.algorithms.sssp.sssp`).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import QueryError
from ..memcloud import MemoryCloud
from ..tsl import compile_tsl
from .api import Graph
from .csr import CsrTopology
from .model import GraphSchema

WEIGHTED_TSL = """
[CellType: NodeCell]
cell struct WeightedNode {
    [EdgeType: SimpleEdge, ReferencedCell: WeightedNode]
    List<long> Outlinks;
    List<double> Weights;
    [EdgeType: SimpleEdge, ReferencedCell: WeightedNode]
    List<long> Inlinks;
}
"""


def weighted_graph_schema() -> GraphSchema:
    """Directed nodes whose out-adjacency carries parallel weights."""
    return GraphSchema(
        compile_tsl(WEIGHTED_TSL), "WeightedNode",
        out_field="Outlinks", in_field="Inlinks",
        attribute_fields=("Weights",),
    )


class WeightedGraphBuilder:
    """Bulk loader for weighted directed graphs."""

    def __init__(self, cloud: MemoryCloud):
        self.cloud = cloud
        self.graph_schema = weighted_graph_schema()
        self._out: dict[int, list[int]] = defaultdict(list)
        self._weights: dict[int, list[float]] = defaultdict(list)
        self._in: dict[int, list[int]] = defaultdict(list)
        self._nodes: set[int] = set()
        self._finalized = False

    def add_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        if self._finalized:
            raise QueryError("builder already finalized")
        if weight < 0:
            raise QueryError("negative edge weights are not supported")
        self._nodes.add(src)
        self._nodes.add(dst)
        self._out[src].append(dst)
        self._weights[src].append(float(weight))
        self._in[dst].append(src)

    def add_edges(self, edges) -> None:
        """Add (src, dst, weight) triples."""
        for src, dst, weight in edges:
            self.add_edge(src, dst, weight)

    def finalize(self) -> "WeightedGraph":
        if self._finalized:
            raise QueryError("builder already finalized")
        self._finalized = True
        node_type = self.graph_schema.node_type
        for node in self._nodes:
            self.cloud.put(node, node_type.encode({
                "Outlinks": self._out.get(node, []),
                "Weights": self._weights.get(node, []),
                "Inlinks": self._in.get(node, []),
            }))
        return WeightedGraph(self.cloud, self.graph_schema,
                             sorted(self._nodes))


class WeightedGraph(Graph):
    """Graph API plus weight access from the same cell read."""

    def weights(self, node_id: int) -> list[float]:
        """Weights parallel to :meth:`outlinks` (same blob)."""
        return self._read_field(node_id, "Weights")

    def weighted_outlinks(self, node_id: int) -> list[tuple[int, float]]:
        """(target, weight) pairs for one node."""
        return list(zip(self.outlinks(node_id), self.weights(node_id)))

    def edge_weight(self, src: int, dst: int) -> float:
        """Weight of the first src->dst edge."""
        for target, weight in self.weighted_outlinks(src):
            if target == dst:
                return weight
        raise QueryError(f"no edge {src} -> {dst}")

    def weighted_topology(self) -> tuple[CsrTopology, np.ndarray]:
        """CSR snapshot plus the per-edge weight array aligned with
        ``out_indices`` — the inputs :func:`repro.algorithms.sssp.sssp`
        takes for weighted shortest paths."""
        topology = CsrTopology(self)
        weights = np.empty(topology.num_edges)
        cursor = 0
        for node in topology.node_ids:
            node_weights = self.weights(int(node))
            weights[cursor:cursor + len(node_weights)] = node_weights
            cursor += len(node_weights)
        if cursor != topology.num_edges:
            raise QueryError("weights do not align with adjacency")
        return topology, weights
