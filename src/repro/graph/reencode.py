"""The background layout re-encoder: repairing adjacency layout drift.

The bulk loader picks each adjacency list's layout once, at encode time.
Online mutation then preserves whatever layout a cell already has (the
accessor never re-runs the policy), so a vertex that grows from 3
friends to 3,000 keeps paying raw fixed-width freight long after the
:class:`~repro.tsl.layout.LayoutPolicy` would have chosen a codec — and
a bitmap neighborhood that takes one out-of-order append falls back to
raw forever.  This module is the repair loop for that drift, modeled on
the defragmentation daemon of Section 6.1: a maintenance pass that walks
live cells, re-encodes the ones whose stored layout no longer matches
the policy's choice, and swaps the new bytes in through the trunk's
compare-and-swap (:meth:`~repro.memcloud.trunk.MemoryTrunk.reencode_cell`).

Correctness leans entirely on the normal mutation path: the CAS applies
only when the cell is unlocked and byte-unchanged since it was read, and
it goes through ``_update`` — so the trunk's mutation epoch bumps,
outstanding zero-copy spans go stale (``StaleSpanError`` instead of
silently decoding moved bytes), and every epoch-keyed serve cache
invalidates.  A migration can therefore never surface a stale answer; a
lost race just leaves the cell for the next pass.

Use it inline::

    reencoder = LayoutReencoder(graph)
    report = reencoder.run_pass()

or as a background daemon thread::

    reencoder.start(interval=0.1)
    ...
    reencoder.stop()
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..errors import CellNotFoundError
from ..tsl.layout import encode_adjacency
from ..tsl.types import AdjacencyListType


@dataclass
class ReencodeReport:
    """Outcome of one re-encoder pass (or accumulated daemon passes)."""

    scanned: int = 0
    candidates: int = 0
    migrated: int = 0
    skipped: int = 0
    """Candidates whose CAS did not apply: the cell mutated or was
    locked between read and swap.  They stay candidates for later."""

    bytes_before: int = 0
    bytes_after: int = 0
    retagged: dict = field(default_factory=dict)
    """``(from_layout, to_layout) -> count`` over migrated fields."""

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after

    def merge(self, other: "ReencodeReport") -> None:
        self.scanned += other.scanned
        self.candidates += other.candidates
        self.migrated += other.migrated
        self.skipped += other.skipped
        self.bytes_before += other.bytes_before
        self.bytes_after += other.bytes_after
        for key, count in other.retagged.items():
            self.retagged[key] = self.retagged.get(key, 0) + count


class LayoutReencoder:
    """Migrates live cells whose layout drifted from the policy's choice.

    ``policy`` defaults to whatever is installed on the graph schema's
    adjacency types (i.e. the policy the loader encoded with); passing a
    different one migrates the whole graph toward it — including
    ``RAW_ONLY_POLICY``, which rolls every codec back to fixed-width.
    """

    def __init__(self, graph, policy=None):
        self.graph = graph
        self.cloud = graph.cloud
        self._node_type = graph.graph_schema.node_type
        self._adjacency_fields = [
            (name, tsl_type)
            for name, tsl_type in self._node_type.fields
            if isinstance(tsl_type, AdjacencyListType)
        ]
        if policy is None and self._adjacency_fields:
            policy = self._adjacency_fields[0][1].policy
        self.policy = policy
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._daemon_report = ReencodeReport()
        self._report_lock = threading.Lock()

    # -- scanning ------------------------------------------------------------

    def drifted_fields(self, blob) -> list[tuple[str, int, int]]:
        """``(field, stored_layout, chosen_layout)`` per drifted field."""
        drifted = []
        for name, tsl_type in self._adjacency_fields:
            offset = self._node_type.field_offset(blob, name)
            stored = tsl_type.stored_layout(blob, offset)
            values, _ = tsl_type.decode(blob, offset)
            chosen = self.policy.choose(values)
            if stored != chosen:
                drifted.append((name, stored, chosen))
        return drifted

    def scan(self, node_ids=None) -> list[int]:
        """Node ids whose stored layout differs from the policy's choice."""
        candidates = []
        for uid in (self.graph.node_ids if node_ids is None else node_ids):
            try:
                blob = self.cloud.get(uid)
            except CellNotFoundError:
                continue
            if self.drifted_fields(blob):
                candidates.append(uid)
        return candidates

    # -- migration -----------------------------------------------------------

    def migrate(self, uid: int) -> ReencodeReport:
        """Re-encode one cell under the policy and CAS the bytes in."""
        report = ReencodeReport(scanned=1)
        try:
            expected = self.cloud.get(uid)
        except CellNotFoundError:
            return report
        drifted = self.drifted_fields(expected)
        if not drifted:
            return report
        report.candidates = 1
        replacement = self._rebuild(expected)
        if self.cloud.reencode_cell(uid, expected, replacement):
            report.migrated = 1
            report.bytes_before = len(expected)
            report.bytes_after = len(replacement)
            for _, stored, chosen in drifted:
                key = (stored, chosen)
                report.retagged[key] = report.retagged.get(key, 0) + 1
        else:
            report.skipped = 1
        return report

    def _rebuild(self, blob) -> bytes:
        """The cell's bytes with every adjacency field re-encoded under
        this re-encoder's policy; all other fields copied verbatim.

        Splicing fields (rather than decode-and-re-encode of the whole
        record with temporarily swapped type policies) keeps the shared
        type instances untouched, so a daemon migrating toward a
        different policy never perturbs concurrent scalar encodes.
        """
        adjacency = dict(self._adjacency_fields)
        parts = []
        pos = 0
        for name, tsl_type in self._node_type.fields:
            end = tsl_type.skip(blob, pos)
            field_type = adjacency.get(name)
            if field_type is None:
                parts.append(bytes(blob[pos:end]))
            else:
                values, _ = field_type.decode(blob, pos)
                parts.append(encode_adjacency(
                    np.asarray(values, dtype=np.int64), self.policy))
            pos = end
        return b"".join(parts)

    def run_pass(self, node_ids=None) -> ReencodeReport:
        """Scan and migrate every drifted cell once; returns the report."""
        report = ReencodeReport()
        for uid in (self.graph.node_ids if node_ids is None else node_ids):
            report.merge(self.migrate(uid))
        return report

    # -- background daemon ---------------------------------------------------

    def start(self, interval: float = 0.05) -> None:
        """Run :meth:`run_pass` repeatedly on a daemon thread."""
        if self._thread is not None:
            raise RuntimeError("layout re-encoder already running")
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                pass_report = self.run_pass()
                with self._report_lock:
                    self._daemon_report.merge(pass_report)
                self._stop.wait(interval)

        self._thread = threading.Thread(
            target=loop, name="layout-reencoder", daemon=True)
        self._thread.start()

    def stop(self) -> ReencodeReport:
        """Stop the daemon and return its accumulated report."""
        if self._thread is None:
            return self._daemon_report
        self._stop.set()
        self._thread.join()
        self._thread = None
        with self._report_lock:
            return self._daemon_report
