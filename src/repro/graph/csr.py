"""Compressed-sparse-row topology snapshots for analytics.

Offline engines iterate the whole edge set every superstep; decoding each
node's blob per superstep would make the Python host cost swamp the
simulation.  ``CsrTopology`` decodes the adjacency **once** into numpy
index arrays — the moral equivalent of Trinity keeping the graph topology
memory-resident (Section 1) — and the BSP engine then works from the
snapshot while simulated costs are still charged per cell access.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError


class CsrTopology:
    """CSR adjacency (out-edges, optionally in-edges) plus placement.

    ``index_of`` maps a 64-bit node id to a dense [0, n) index; all arrays
    are aligned with that dense indexing.
    """

    def __init__(self, graph, include_inlinks: bool = False):
        self.node_ids = np.asarray(graph.node_ids, dtype=np.int64)
        self.n = len(self.node_ids)
        self.index_of = {
            int(uid): i for i, uid in enumerate(self.node_ids)
        }
        self.out_indptr, self.out_indices = self._build(
            graph, graph.outlinks
        )
        if include_inlinks and graph.directed:
            self.in_indptr, self.in_indices = self._build(
                graph, graph.inlinks
            )
        else:
            self.in_indptr = None
            self.in_indices = None
        machines = np.empty(self.n, dtype=np.int32)
        for i, uid in enumerate(self.node_ids):
            machines[i] = graph.machine_of(int(uid))
        self.machine = machines
        self.machine_count = graph.cloud.config.machines

    @classmethod
    def from_arrays(cls, edges: np.ndarray, machines: int = 4,
                    num_nodes: int | None = None) -> "CsrTopology":
        """Build a topology straight from an ``(m, 2)`` edge array.

        Skips the memory cloud entirely — node ``i`` is its own dense
        index and id, placed on machine ``i % machines`` (the addressing
        layer's modulo placement).  Meant for benchmark harnesses, where
        building a cloud-resident graph at millions of edges would
        dominate the run without exercising anything the benchmark
        measures.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if num_nodes is None:
            num_nodes = int(edges.max()) + 1 if len(edges) else 0
        topo = cls.__new__(cls)
        topo.n = num_nodes
        topo.node_ids = np.arange(num_nodes, dtype=np.int64)
        topo.index_of = {i: i for i in range(num_nodes)}
        order = np.argsort(edges[:, 0], kind="stable")
        src = edges[order, 0]
        topo.out_indices = edges[order, 1]
        topo.out_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=num_nodes),
                  out=topo.out_indptr[1:])
        topo.in_indptr = None
        topo.in_indices = None
        topo.machine = (topo.node_ids % machines).astype(np.int32)
        topo.machine_count = machines
        return topo

    def _build(self, graph, neighbors_fn):
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        chunks = []
        for i, uid in enumerate(self.node_ids):
            neighbor_ids = neighbors_fn(int(uid))
            indptr[i + 1] = indptr[i] + len(neighbor_ids)
            if neighbor_ids:
                chunks.append(np.fromiter(
                    (self.index_of[v] for v in neighbor_ids),
                    dtype=np.int64, count=len(neighbor_ids),
                ))
        if chunks:
            indices = np.concatenate(chunks)
        else:
            indices = np.empty(0, dtype=np.int64)
        return indptr, indices

    # -- accessors ---------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.out_indptr[-1])

    def out_neighbors(self, index: int) -> np.ndarray:
        """Dense out-neighbor indices of dense node ``index``."""
        return self.out_indices[self.out_indptr[index]:self.out_indptr[index + 1]]

    def in_neighbors(self, index: int) -> np.ndarray:
        if self.in_indices is None:
            raise QueryError("topology was built without inlinks")
        return self.in_indices[self.in_indptr[index]:self.in_indptr[index + 1]]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.out_indptr)

    def nodes_of_machine(self, machine_id: int) -> np.ndarray:
        """Dense indices of the nodes placed on one machine."""
        return np.nonzero(self.machine == machine_id)[0]

    def cut_edges(self) -> int:
        """Edges whose endpoints live on different machines — the traffic
        the message-passing optimisations of Section 5.4 target."""
        src = np.repeat(np.arange(self.n), np.diff(self.out_indptr))
        return int(np.sum(self.machine[src] != self.machine[self.out_indices]))
