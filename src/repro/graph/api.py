"""The Graph API: adjacency and attribute access over cloud-resident cells.

Reads decode straight from the node's blob in its memory trunk — the graph
is never shadow-copied into Python objects (the paper's Section 4.3
argument against runtime objects).  For tight analytic loops the compute
engines build a :class:`~repro.graph.csr.CsrTopology` snapshot once and
reuse it across supersteps, matching Trinity's memory-resident topology.
"""

from __future__ import annotations

from ..errors import QueryError
from ..memcloud import MemoryCloud
from ..tsl.accessor import use_cell
from .model import GraphSchema


class Graph:
    """A graph whose nodes live as cells in a memory cloud.

    Construct via :class:`~repro.graph.builder.GraphBuilder` rather than
    directly; the builder guarantees every node's cell exists.
    """

    def __init__(self, cloud: MemoryCloud, graph_schema: GraphSchema,
                 node_ids: list[int]):
        self.cloud = cloud
        self.graph_schema = graph_schema
        self.node_ids = list(node_ids)
        self._node_type = graph_schema.node_type

    # -- basic shape --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def directed(self) -> bool:
        return self.graph_schema.directed

    def __contains__(self, node_id: int) -> bool:
        return self.cloud.contains(node_id)

    def num_edges(self) -> int:
        total = sum(len(self.outlinks(n)) for n in self.node_ids)
        return total if self.directed else total // 2

    # -- adjacency ---------------------------------------------------------

    def _read_field(self, node_id: int, field_name: str):
        blob = self.cloud.get(node_id)
        field_type = self._node_type.field_type(field_name)
        offset = self._node_type.field_offset(blob, field_name)
        value, _ = field_type.decode(blob, offset)
        return value

    def outlinks(self, node_id: int) -> list[int]:
        """Outgoing neighbor ids (all neighbors when undirected)."""
        return self._read_field(node_id, self.graph_schema.out_field)

    def inlinks(self, node_id: int) -> list[int]:
        """Incoming neighbor ids; equals :meth:`outlinks` when undirected."""
        if self.graph_schema.in_field is None:
            return self._read_field(node_id, self.graph_schema.out_field)
        return self._read_field(node_id, self.graph_schema.in_field)

    def degree(self, node_id: int) -> int:
        return len(self.outlinks(node_id))

    # -- attributes ---------------------------------------------------------

    def attribute(self, node_id: int, field_name: str):
        """Read one attribute field of a node."""
        if field_name not in self.graph_schema.attribute_fields:
            raise QueryError(
                f"{field_name!r} is not an attribute of "
                f"{self.graph_schema.cell_name}"
            )
        return self._read_field(node_id, field_name)

    def read_field(self, node_id: int, field_name: str):
        """Read any declared field of a node's cell (attribute or edge
        list) — the raw access surface TQL queries are compiled onto."""
        if field_name not in self._node_type.field_names():
            raise QueryError(
                f"{self.graph_schema.cell_name} has no field "
                f"{field_name!r}"
            )
        return self._read_field(node_id, field_name)

    def node(self, node_id: int) -> dict:
        """Materialise a node's full cell as a dict."""
        blob = self.cloud.get(node_id)
        value, _ = self._node_type.decode(blob, 0)
        return value

    def use_node(self, node_id: int):
        """Open a cell accessor on a node (for in-place mutation)."""
        return use_cell(self.cloud, node_id, self._node_type)

    # -- online mutation ---------------------------------------------------

    def add_node(self, node_id: int, **attributes) -> None:
        """Insert one node into the live graph (online update path).

        Writes go through the buffered log when the cloud belongs to a
        cluster with logging enabled, so online inserts survive crashes
        exactly like client writes (Section 6.2).
        """
        if self.cloud.contains(node_id):
            raise QueryError(f"node {node_id} already exists")
        schema = self.graph_schema
        unknown = set(attributes) - set(schema.attribute_fields)
        if unknown:
            raise QueryError(f"unknown attributes: {sorted(unknown)}")
        record = dict(attributes)
        record[schema.out_field] = []
        if schema.in_field is not None:
            record[schema.in_field] = []
        self.cloud.put(node_id, self._node_type.encode(record))
        self.node_ids.append(node_id)
        cached = getattr(self, "_node_set_cache", None)
        if cached is not None:
            cached.add(node_id)

    def add_edge(self, src: int, dst: int) -> None:
        """Insert one edge into the live graph via cell accessors.

        Grows the endpoint cells in place (exercising the short-lived
        reservation path of Section 6.1 when blobs outgrow their slots).
        """
        for endpoint in (src, dst):
            if not self.cloud.contains(endpoint):
                self.add_node(endpoint)
        schema = self.graph_schema
        with self.use_node(src) as cell:
            cell.get(schema.out_field).append(dst)
        if schema.in_field is not None:
            with self.use_node(dst) as cell:
                cell.get(schema.in_field).append(src)
        else:
            with self.use_node(dst) as cell:
                cell.get(schema.out_field).append(src)

    # -- placement ---------------------------------------------------------

    def machine_of(self, node_id: int) -> int:
        """The machine hosting this node's cell."""
        return self.cloud.machine_of(node_id)

    def nodes_on(self, machine_id: int) -> list[int]:
        """Node ids hosted by one machine (ascending)."""
        return sorted(
            uid for uid in self.cloud.cells_on(machine_id)
            if self.cloud.contains(uid) and uid in self._node_set()
        )

    def partition(self) -> dict[int, list[int]]:
        """machine id → node ids, for the whole graph."""
        machines: dict[int, list[int]] = {
            m: [] for m in range(self.cloud.config.machines)
        }
        for node_id in self.node_ids:
            machines[self.machine_of(node_id)].append(node_id)
        return machines

    def _node_set(self) -> set[int]:
        cached = getattr(self, "_node_set_cache", None)
        if cached is None:
            cached = set(self.node_ids)
            self._node_set_cache = cached
        return cached
