"""The Graph API: adjacency and attribute access over cloud-resident cells.

Reads decode straight from the node's blob in its memory trunk — the graph
is never shadow-copied into Python objects (the paper's Section 4.3
argument against runtime objects).  For tight analytic loops the compute
engines build a :class:`~repro.graph.csr.CsrTopology` snapshot once and
reuse it across supersteps, matching Trinity's memory-resident topology.

Online queries get a middle road: the ``*_batch`` methods take a whole
frontier of node ids at once, route it through the memory cloud's
``bulk_get`` (one vectorized hash pass, one lock acquisition per trunk)
and decode adjacency columns CSR-style via the compiled decoders in
:mod:`repro.tsl.batch` — k frontier nodes cost one batched read instead
of k hash probes plus k whole-cell decodes.  Every batch entry point
accepts ``cross_check=True``, which shadow-replays the scalar path and
raises :class:`~repro.memcloud.cloud.BulkPathDivergence` on any
disagreement.
"""

from __future__ import annotations

import numpy as np

from ..errors import QueryError
from ..memcloud import MemoryCloud
from ..memcloud.cloud import BulkPathDivergence
from ..tsl.accessor import use_cell
from ..tsl.batch import batch_decoder_for
from ..tsl.layout import install_layout_policy
from ..tsl.types import ListType
from ..utils.arrays import gather_ranges
from .model import GraphSchema


class Graph:
    """A graph whose nodes live as cells in a memory cloud.

    Construct via :class:`~repro.graph.builder.GraphBuilder` rather than
    directly; the builder guarantees every node's cell exists.
    """

    def __init__(self, cloud: MemoryCloud, graph_schema: GraphSchema,
                 node_ids: list[int]):
        self.cloud = cloud
        self.graph_schema = graph_schema
        install_layout_policy(graph_schema.node_type,
                              cloud.config.memory.resolved_layout_policy())
        self.node_ids = list(node_ids)
        self._node_type = graph_schema.node_type
        self._decoder = batch_decoder_for(self._node_type)
        obs = cloud.obs
        self._m_batch_calls = obs.counter("query.batch.calls")
        self._m_batch_cells = obs.counter("query.batch.cells")
        self._m_batch_dedup = obs.counter("query.batch.cells_deduped")
        self._m_batch_headers = obs.counter("query.batch.degree_headers")
        self._m_batch_checks = obs.counter("query.batch.cross_checks")

    # -- basic shape --------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def directed(self) -> bool:
        return self.graph_schema.directed

    def __contains__(self, node_id: int) -> bool:
        return self.cloud.contains(node_id)

    def num_edges(self) -> int:
        if not self.node_ids:
            return 0
        degrees = self.degree_batch(np.asarray(self.node_ids,
                                               dtype=np.int64))
        total = int(degrees.sum())
        return total if self.directed else total // 2

    # -- adjacency ---------------------------------------------------------

    def _read_field(self, node_id: int, field_name: str):
        blob = self.cloud.get(node_id)
        field_type = self._node_type.field_type(field_name)
        offset = self._node_type.field_offset(blob, field_name)
        value, _ = field_type.decode(blob, offset)
        return value

    def outlinks(self, node_id: int) -> list[int]:
        """Outgoing neighbor ids (all neighbors when undirected)."""
        return self._read_field(node_id, self.graph_schema.out_field)

    def inlinks(self, node_id: int) -> list[int]:
        """Incoming neighbor ids; equals :meth:`outlinks` when undirected."""
        if self.graph_schema.in_field is None:
            return self._read_field(node_id, self.graph_schema.out_field)
        return self._read_field(node_id, self.graph_schema.in_field)

    def degree(self, node_id: int) -> int:
        """Out-degree, decoded from the adjacency list's count header
        only — the elements are never touched."""
        field_name = self.graph_schema.out_field
        field_type = self._node_type.field_type(field_name)
        if not isinstance(field_type, ListType):
            return len(self.outlinks(node_id))
        blob = self.cloud.get(node_id)
        offset = self._node_type.field_offset(blob, field_name)
        return field_type.decode_count(blob, offset)[0]

    # -- batched adjacency (the online traversal fast path) ----------------

    def _bulk_spans(self, node_ids) -> tuple[int, list, np.ndarray | None]:
        """Zero-copy payload spans for a frontier array.

        Returns ``(n, groups, inverse)`` where each group is one trunk's
        ``(arena_view, starts, limits, input_indices)`` — the cell bytes
        are never copied; the decoders run directly on the trunk arenas
        and only field payloads materialize.

        Repeated node ids are deduplicated *before* hashing and routing:
        fused multi-query frontiers overlap heavily, and a duplicate
        would otherwise pay the full addressing + trunk lookup + decode
        cost twice.  When duplicates were dropped, the group positions
        index the unique-id array and ``inverse`` maps every input
        position to its unique index so callers can expand results back
        to input order; ``inverse`` is None for duplicate-free input (the
        common single-query case keeps its original routing order).
        """
        ids = np.asarray(node_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise QueryError(
                f"batch reads take a 1-D id array, got shape {ids.shape}"
            )
        self._m_batch_calls.inc()
        self._m_batch_cells.inc(len(ids))
        unique, inverse = np.unique(ids, return_inverse=True)
        if len(unique) == len(ids):
            return len(ids), self.cloud.bulk_get_spans(ids), None
        self._m_batch_dedup.inc(len(ids) - len(unique))
        return len(ids), self.cloud.bulk_get_spans(unique), inverse

    @staticmethod
    def _assert_spans_fresh(groups) -> None:
        """Reject decode results built from relocated cells.

        Checked *after* decoding: if any touched trunk structurally
        changed between the span fetch and now (a put that triggered a
        defrag, a remove, a resize), the arena views may have read moved
        bytes and the decoded values cannot be trusted —
        :class:`~repro.errors.StaleSpanError` instead of silent garbage.

        Doubles as the end of the span lifetime: each group's page pins
        are released here so paged trunks stay evictable between
        batches (resident trunks: no-op).
        """
        try:
            for group in groups:
                group.assert_fresh()
        finally:
            for group in groups:
                group.close()

    def outlinks_batch(self, node_ids, cross_check: bool = False
                       ) -> tuple[np.ndarray, np.ndarray]:
        """CSR adjacency for a whole frontier: ``(indptr, flat)``.

        ``flat[indptr[i]:indptr[i + 1]]`` are the out-neighbors of
        ``node_ids[i]`` — one ``cloud.bulk_get`` and one columnar decode
        for the whole batch.  ``cross_check=True`` replays every node
        through the scalar :meth:`outlinks` path and raises
        :class:`BulkPathDivergence` on any difference.
        """
        return self.read_field_csr(node_ids, self.graph_schema.out_field,
                                   cross_check=cross_check)

    def inlinks_batch(self, node_ids, cross_check: bool = False
                      ) -> tuple[np.ndarray, np.ndarray]:
        """CSR in-neighbors per node (== :meth:`outlinks_batch` when
        undirected)."""
        field = self.graph_schema.in_field or self.graph_schema.out_field
        return self.read_field_csr(node_ids, field, cross_check=cross_check)

    def read_field_csr(self, node_ids, field_name: str,
                       cross_check: bool = False
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Batched CSR decode of one ``List<primitive>`` field."""
        self._require_field(field_name)
        if self._decoder.csr_dtype(field_name) is None:
            raise QueryError(
                f"field {field_name!r} has no CSR batch decoding"
            )
        n, groups, inverse = self._bulk_spans(node_ids)
        m = n if inverse is None else int(inverse.max()) + 1
        decoded = [
            (idx, self._decoder.decode_list_csr_spans(arena, starts, limits,
                                                      field_name))
            for arena, starts, limits, idx in groups
        ]
        counts = np.zeros(m, dtype=np.int64)
        for idx, (sub_indptr, _) in decoded:
            counts[idx] = np.diff(sub_indptr)
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        flat = np.empty(int(indptr[-1]),
                        dtype=self._decoder.csr_dtype(field_name))
        for idx, (sub_indptr, sub_flat) in decoded:
            if len(sub_flat):
                # Scatter each trunk's contiguous lists to their input-
                # order positions, element-at-a-time in one fancy index.
                sizes = np.diff(sub_indptr)
                positions = (np.repeat(indptr[idx] - sub_indptr[:-1], sizes)
                             + np.arange(len(sub_flat)))
                flat[positions] = sub_flat
        self._assert_spans_fresh(groups)
        if inverse is not None:
            # Expand the unique-id CSR back to input order: each
            # duplicate position gathers its unique id's list.
            sizes = counts[inverse]
            unique_starts = indptr[inverse]
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            flat = gather_ranges(flat, unique_starts, sizes)
        if cross_check:
            self._m_batch_checks.inc()
            bounds = indptr.tolist()
            values = flat.tolist()
            for i, node_id in enumerate(np.asarray(node_ids).tolist()):
                scalar = self._read_field(int(node_id), field_name)
                if values[bounds[i]:bounds[i + 1]] != scalar:
                    raise BulkPathDivergence(
                        f"node {node_id}: batched {field_name} decode "
                        f"diverges from the scalar path"
                    )
        return indptr, flat

    def read_field_batch(self, node_ids, field_name: str,
                         cross_check: bool = False) -> list:
        """One value per node for any declared field (attribute or edge
        list), through one ``bulk_get`` — the batched twin of
        :meth:`read_field`."""
        self._require_field(field_name)
        n, groups, inverse = self._bulk_spans(node_ids)
        m = n if inverse is None else int(inverse.max()) + 1
        values: list = [None] * m
        for arena, starts, limits, idx in groups:
            decoded = self._decoder.decode_column_spans(arena, starts,
                                                        limits, field_name)
            for i, value in zip(idx.tolist(), decoded):
                values[i] = value
        self._assert_spans_fresh(groups)
        if inverse is not None:
            values = [values[j] for j in inverse.tolist()]
        if cross_check:
            self._m_batch_checks.inc()
            for node_id, value in zip(np.asarray(node_ids).tolist(), values):
                scalar = self._read_field(int(node_id), field_name)
                if value != scalar:
                    raise BulkPathDivergence(
                        f"node {node_id}: batched {field_name} decode "
                        f"diverges from the scalar path"
                    )
        return values

    def field_eq_batch(self, node_ids, field_name: str, value,
                       cross_check: bool = False) -> np.ndarray:
        """``field == value`` per node, as one bool array.

        The frontier name-check of people search: for string fields the
        comparison runs on the raw utf-8 bytes in the trunk arenas —
        length headers reject most nodes, and no Python string is ever
        built for the rest.
        """
        self._require_field(field_name)
        n, groups, inverse = self._bulk_spans(node_ids)
        m = n if inverse is None else int(inverse.max()) + 1
        hits = np.zeros(m, dtype=bool)
        for arena, starts, limits, idx in groups:
            hits[idx] = self._decoder.string_eq_spans(arena, starts, limits,
                                                      field_name, value)
        self._assert_spans_fresh(groups)
        if inverse is not None:
            hits = hits[inverse]
        if cross_check:
            self._m_batch_checks.inc()
            for node_id, hit in zip(np.asarray(node_ids).tolist(),
                                    hits.tolist()):
                scalar = self._read_field(int(node_id), field_name) == value
                if hit != scalar:
                    raise BulkPathDivergence(
                        f"node {node_id}: batched {field_name} == "
                        f"{value!r} diverges from the scalar path"
                    )
        return hits

    def degree_batch(self, node_ids, cross_check: bool = False) -> np.ndarray:
        """Out-degrees for a batch of nodes, reading only the adjacency
        count headers (no element decode at all)."""
        field_name = self.graph_schema.out_field
        self._require_field(field_name)
        n, groups, inverse = self._bulk_spans(node_ids)
        m = n if inverse is None else int(inverse.max()) + 1
        counts = np.zeros(m, dtype=np.int64)
        header_only = isinstance(self._node_type.field_type(field_name),
                                 ListType)
        for arena, starts, limits, idx in groups:
            if header_only:
                counts[idx] = self._decoder.field_counts_spans(
                    arena, starts, limits, field_name)
            else:
                counts[idx] = [
                    len(v) for v in self._decoder.decode_column_spans(
                        arena, starts, limits, field_name)]
        self._assert_spans_fresh(groups)
        if inverse is not None:
            counts = counts[inverse]
        self._m_batch_headers.inc(len(counts))
        if cross_check:
            self._m_batch_checks.inc()
            for node_id, count in zip(np.asarray(node_ids).tolist(),
                                      counts.tolist()):
                scalar = len(self.outlinks(int(node_id)))
                if count != scalar:
                    raise BulkPathDivergence(
                        f"node {node_id}: batched degree {count} != "
                        f"scalar {scalar}"
                    )
        return counts

    def machine_of_batch(self, node_ids) -> np.ndarray:
        """Owning machine per node — one vectorized ``trunk_of_array``
        pass through the addressing table."""
        return self.cloud.machines_of_array(node_ids)

    def _require_field(self, field_name: str) -> None:
        if field_name not in self._node_type.field_names():
            raise QueryError(
                f"{self.graph_schema.cell_name} has no field "
                f"{field_name!r}"
            )

    # -- attributes ---------------------------------------------------------

    def attribute(self, node_id: int, field_name: str):
        """Read one attribute field of a node."""
        if field_name not in self.graph_schema.attribute_fields:
            raise QueryError(
                f"{field_name!r} is not an attribute of "
                f"{self.graph_schema.cell_name}"
            )
        return self._read_field(node_id, field_name)

    def read_field(self, node_id: int, field_name: str):
        """Read any declared field of a node's cell (attribute or edge
        list) — the raw access surface TQL queries are compiled onto."""
        self._require_field(field_name)
        return self._read_field(node_id, field_name)

    def node(self, node_id: int) -> dict:
        """Materialise a node's full cell as a dict."""
        blob = self.cloud.get(node_id)
        value, _ = self._node_type.decode(blob, 0)
        return value

    def use_node(self, node_id: int):
        """Open a cell accessor on a node (for in-place mutation)."""
        return use_cell(self.cloud, node_id, self._node_type)

    # -- online mutation ---------------------------------------------------

    def add_node(self, node_id: int, **attributes) -> None:
        """Insert one node into the live graph (online update path).

        Writes go through the buffered log when the cloud belongs to a
        cluster with logging enabled, so online inserts survive crashes
        exactly like client writes (Section 6.2).
        """
        if self.cloud.contains(node_id):
            raise QueryError(f"node {node_id} already exists")
        schema = self.graph_schema
        unknown = set(attributes) - set(schema.attribute_fields)
        if unknown:
            raise QueryError(f"unknown attributes: {sorted(unknown)}")
        record = dict(attributes)
        record[schema.out_field] = []
        if schema.in_field is not None:
            record[schema.in_field] = []
        self.cloud.put(node_id, self._node_type.encode(record))
        self.node_ids.append(node_id)
        cached = getattr(self, "_node_set_cache", None)
        if cached is not None:
            cached.add(node_id)
        self._machine_partition_cache = None

    def add_edge(self, src: int, dst: int) -> None:
        """Insert one edge into the live graph via cell accessors.

        Grows the endpoint cells in place (exercising the short-lived
        reservation path of Section 6.1 when blobs outgrow their slots).
        """
        for endpoint in (src, dst):
            if not self.cloud.contains(endpoint):
                self.add_node(endpoint)
        schema = self.graph_schema
        with self.use_node(src) as cell:
            cell.get(schema.out_field).append(dst)
        if schema.in_field is not None:
            with self.use_node(dst) as cell:
                cell.get(schema.in_field).append(src)
        else:
            with self.use_node(dst) as cell:
                cell.get(schema.out_field).append(src)
        self._machine_partition_cache = None

    # -- placement ---------------------------------------------------------

    def machine_of(self, node_id: int) -> int:
        """The machine hosting this node's cell."""
        return self.cloud.machine_of(node_id)

    def nodes_on(self, machine_id: int) -> list[int]:
        """Node ids hosted by one machine (ascending).

        Cached per machine alongside ``_node_set_cache``; both caches
        are invalidated by :meth:`add_node`/:meth:`add_edge`.
        """
        cache = getattr(self, "_machine_partition_cache", None)
        if cache is None:
            cache = {}
            self._machine_partition_cache = cache
        nodes = cache.get(machine_id)
        if nodes is None:
            nodes = sorted(
                uid for uid in self.cloud.cells_on(machine_id)
                if self.cloud.contains(uid) and uid in self._node_set()
            )
            cache[machine_id] = nodes
        return list(nodes)

    def partition(self) -> dict[int, list[int]]:
        """machine id → node ids, for the whole graph."""
        machines: dict[int, list[int]] = {
            m: [] for m in range(self.cloud.config.machines)
        }
        if self.node_ids:
            owners = self.machine_of_batch(
                np.asarray(self.node_ids, dtype=np.int64)).tolist()
            for node_id, machine in zip(self.node_ids, owners):
                machines[machine].append(node_id)
        return machines

    def _node_set(self) -> set[int]:
        cached = getattr(self, "_node_set_cache", None)
        if cached is None:
            cached = set(self.node_ids)
            self._node_set_cache = cached
        return cached
