"""Graph data model on top of the memory cloud (Section 4.1).

Nodes are cells: a cell holds the node's attributes plus one or two lists
of 64-bit cell ids — ``Outlinks``/``Inlinks`` for directed graphs, a single
``Neighbors`` list for undirected ones.  Edges are normally *SimpleEdge*s
(just the target's cell id, optionally with associated data kept beside
it); rich edges become their own cells (*StructEdge*), and *HyperEdge*
cells store a set of member node ids.

Public pieces:

* :func:`~repro.graph.model.plain_graph_schema` /
  :func:`~repro.graph.model.social_graph_schema` — canned TSL schemas.
* :class:`~repro.graph.builder.GraphBuilder` — bulk loader that encodes
  nodes into blobs and stores them in a :class:`~repro.memcloud.MemoryCloud`.
* :class:`~repro.graph.api.Graph` — the query surface: adjacency,
  attributes, node→machine placement.
* :class:`~repro.graph.csr.CsrTopology` — a compact, memory-resident
  adjacency snapshot used by the offline analytics engines (Trinity keeps
  "the graph topology ... memory-resident", Section 1 footnote).
"""

from .model import (
    GraphSchema,
    hyperedge_schema,
    plain_graph_schema,
    social_graph_schema,
    struct_edge_schema,
)
from .builder import GraphBuilder
from .api import Graph
from .csr import CsrTopology
from .reencode import LayoutReencoder, ReencodeReport
from .weighted import WeightedGraph, WeightedGraphBuilder, weighted_graph_schema
from .rich import HyperGraph, HyperGraphBuilder, RichGraph, RichGraphBuilder

__all__ = [
    "GraphSchema",
    "plain_graph_schema",
    "social_graph_schema",
    "struct_edge_schema",
    "hyperedge_schema",
    "GraphBuilder",
    "Graph",
    "CsrTopology",
    "LayoutReencoder",
    "ReencodeReport",
    "WeightedGraph",
    "WeightedGraphBuilder",
    "weighted_graph_schema",
    "RichGraph",
    "RichGraphBuilder",
    "HyperGraph",
    "HyperGraphBuilder",
]
