"""Rich-edge graph modeling: StructEdge and HyperEdge graphs (Section 4.1).

"When edges are associated with rich information, we may represent edges
using cells, and store the rich information associated with the edges in
the edge cells.  Correspondingly, a node will store a set of edge
cellids.  We can also model hypergraphs in this way, as we can easily
store a set of node cellids in an edge cell."

Two builder/graph pairs implement exactly that:

* :class:`RichGraphBuilder` / :class:`RichGraph` — every edge is a
  ``Relation`` cell carrying a kind and a weight; nodes store relation
  cell ids.
* :class:`HyperGraphBuilder` / :class:`HyperGraph` — hyperedges are
  ``Group`` cells holding member node ids; members hold group ids.

Edge/group cell ids are allocated from a reserved high range so they can
never collide with caller-chosen node ids.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..errors import QueryError
from ..memcloud import MemoryCloud
from .model import hyperedge_schema, struct_edge_schema

_EDGE_ID_BASE = 1 << 62


@dataclass(frozen=True)
class Relation:
    """A materialised StructEdge."""

    cell_id: int
    kind: str
    weight: float
    source: int
    target: int


class RichGraphBuilder:
    """Builds a graph whose edges are independent cells."""

    def __init__(self, cloud: MemoryCloud):
        self.cloud = cloud
        self.schema = struct_edge_schema()
        self._entity_type = self.schema.cell("Entity")
        self._relation_type = self.schema.cell("Relation")
        self._names: dict[int, str] = {}
        self._relations: dict[int, list[int]] = {}
        self._edge_ids = itertools.count(_EDGE_ID_BASE)
        self._edges: list[Relation] = []
        self._finalized = False

    def add_node(self, node_id: int, name: str = "") -> None:
        if node_id >= _EDGE_ID_BASE:
            raise QueryError("node ids above 2^62 are reserved for edges")
        self._names.setdefault(node_id, name)
        if name:
            self._names[node_id] = name
        self._relations.setdefault(node_id, [])

    def add_edge(self, src: int, dst: int, kind: str = "related",
                 weight: float = 1.0) -> int:
        """Create one StructEdge cell; returns its cell id."""
        self.add_node(src)
        self.add_node(dst)
        cell_id = next(self._edge_ids)
        self._edges.append(Relation(cell_id, kind, weight, src, dst))
        self._relations[src].append(cell_id)
        self._relations[dst].append(cell_id)
        return cell_id

    def finalize(self) -> "RichGraph":
        if self._finalized:
            raise QueryError("builder already finalized")
        self._finalized = True
        for node_id, relation_ids in self._relations.items():
            self.cloud.put(node_id, self._entity_type.encode({
                "Name": self._names.get(node_id, ""),
                "Relations": relation_ids,
            }))
        for edge in self._edges:
            self.cloud.put(edge.cell_id, self._relation_type.encode({
                "Kind": edge.kind,
                "Weight": edge.weight,
                "Source": edge.source,
                "Target": edge.target,
            }))
        return RichGraph(self.cloud, sorted(self._relations))


class RichGraph:
    """Query surface over a StructEdge graph."""

    def __init__(self, cloud: MemoryCloud, node_ids: list[int]):
        self.cloud = cloud
        self.schema = struct_edge_schema()
        self._entity_type = self.schema.cell("Entity")
        self._relation_type = self.schema.cell("Relation")
        self.node_ids = list(node_ids)

    def name(self, node_id: int) -> str:
        entity, _ = self._entity_type.decode(self.cloud.get(node_id), 0)
        return entity["Name"]

    def relations(self, node_id: int) -> list[Relation]:
        """All edge cells incident to a node (either endpoint)."""
        entity, _ = self._entity_type.decode(self.cloud.get(node_id), 0)
        out = []
        for cell_id in entity["Relations"]:
            record, _ = self._relation_type.decode(
                self.cloud.get(cell_id), 0
            )
            out.append(Relation(cell_id, record["Kind"], record["Weight"],
                                record["Source"], record["Target"]))
        return out

    def neighbors(self, node_id: int, kind: str | None = None) -> list[int]:
        """Adjacent node ids, optionally restricted to one edge kind."""
        neighbors = []
        for relation in self.relations(node_id):
            if kind is not None and relation.kind != kind:
                continue
            other = (relation.target if relation.source == node_id
                     else relation.source)
            neighbors.append(other)
        return sorted(set(neighbors))

    def edge_weight(self, src: int, dst: int) -> float:
        """Weight of the first edge between two nodes."""
        for relation in self.relations(src):
            if {relation.source, relation.target} == {src, dst}:
                return relation.weight
        raise QueryError(f"no edge between {src} and {dst}")

    def reweight(self, edge_cell_id: int, weight: float) -> None:
        """Mutate an edge cell in place through its accessor."""
        from ..tsl.accessor import use_cell
        with use_cell(self.cloud, edge_cell_id, self._relation_type) as cell:
            cell.Weight = weight


class HyperGraphBuilder:
    """Builds a hypergraph: Group cells holding member node ids."""

    def __init__(self, cloud: MemoryCloud):
        self.cloud = cloud
        self.schema = hyperedge_schema()
        self._member_type = self.schema.cell("Member")
        self._group_type = self.schema.cell("Group")
        self._member_names: dict[int, str] = {}
        self._member_groups: dict[int, list[int]] = {}
        self._groups: dict[int, tuple[str, list[int]]] = {}
        self._group_ids = itertools.count(_EDGE_ID_BASE)
        self._finalized = False

    def add_member(self, member_id: int, name: str = "") -> None:
        if member_id >= _EDGE_ID_BASE:
            raise QueryError("member ids above 2^62 are reserved")
        if name or member_id not in self._member_names:
            self._member_names[member_id] = name
        self._member_groups.setdefault(member_id, [])

    def add_group(self, label: str, members) -> int:
        """Create one hyperedge over ``members``; returns its cell id."""
        members = list(members)
        if len(members) < 1:
            raise QueryError("a hyperedge needs at least one member")
        group_id = next(self._group_ids)
        for member in members:
            self.add_member(member)
            self._member_groups[member].append(group_id)
        self._groups[group_id] = (label, members)
        return group_id

    def finalize(self) -> "HyperGraph":
        if self._finalized:
            raise QueryError("builder already finalized")
        self._finalized = True
        for member_id, groups in self._member_groups.items():
            self.cloud.put(member_id, self._member_type.encode({
                "Name": self._member_names.get(member_id, ""),
                "Groups": groups,
            }))
        for group_id, (label, members) in self._groups.items():
            self.cloud.put(group_id, self._group_type.encode({
                "Label": label,
                "Members": members,
            }))
        return HyperGraph(self.cloud, sorted(self._member_groups),
                          sorted(self._groups))


class HyperGraph:
    """Query surface over a hypergraph of Group cells."""

    def __init__(self, cloud: MemoryCloud, member_ids, group_ids):
        self.cloud = cloud
        self.schema = hyperedge_schema()
        self._member_type = self.schema.cell("Member")
        self._group_type = self.schema.cell("Group")
        self.member_ids = list(member_ids)
        self.group_ids = list(group_ids)

    def groups_of(self, member_id: int) -> list[int]:
        member, _ = self._member_type.decode(self.cloud.get(member_id), 0)
        return list(member["Groups"])

    def members_of(self, group_id: int) -> list[int]:
        group, _ = self._group_type.decode(self.cloud.get(group_id), 0)
        return list(group["Members"])

    def label_of(self, group_id: int) -> str:
        group, _ = self._group_type.decode(self.cloud.get(group_id), 0)
        return group["Label"]

    def co_members(self, member_id: int) -> list[int]:
        """Everyone sharing at least one group with ``member_id``."""
        out: set[int] = set()
        for group_id in self.groups_of(member_id):
            out.update(self.members_of(group_id))
        out.discard(member_id)
        return sorted(out)

    def two_section_edges(self) -> list[tuple[int, int]]:
        """The 2-section (clique expansion): a plain edge per co-member
        pair, for feeding hypergraphs into the analytics stack."""
        edges: set[tuple[int, int]] = set()
        for group_id in self.group_ids:
            members = self.members_of(group_id)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    edges.add((min(a, b), max(a, b)))
        return sorted(edges)
