"""Canned graph schemas and the GraphSchema descriptor.

TSL deliberately has no fixed graph schema (Section 4: "instead of using
fixed graph schema ... Trinity lets users define graph schema ... through
TSL").  The helpers here generate common schemas so examples and
benchmarks do not have to write TSL by hand, while anything bespoke can
still be compiled from user TSL and wrapped in :class:`GraphSchema`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TslTypeError
from ..tsl import CompiledSchema, compile_tsl


@dataclass(frozen=True)
class GraphSchema:
    """Binds a compiled TSL schema to graph-structural conventions.

    ``out_field`` names the adjacency list used for forward traversal.
    ``in_field`` is ``None`` for undirected graphs, in which case
    ``out_field`` holds the symmetric neighbor list.
    """

    schema: CompiledSchema
    cell_name: str
    out_field: str
    in_field: str | None
    attribute_fields: tuple[str, ...] = ()

    @property
    def directed(self) -> bool:
        return self.in_field is not None

    @property
    def node_type(self):
        return self.schema.cell(self.cell_name)

    @classmethod
    def from_compiled(cls, schema: CompiledSchema,
                      cell_name: str) -> "GraphSchema":
        """Infer structural conventions from ``[EdgeType: ...]`` attributes.

        The first edge-bearing field is treated as outgoing, the second (if
        any) as incoming; remaining fields are attributes.
        """
        edges = schema.edge_fields(cell_name)
        if not edges:
            raise TslTypeError(
                f"cell {cell_name!r} declares no [EdgeType] fields"
            )
        out_field = edges[0].field_name
        in_field = edges[1].field_name if len(edges) > 1 else None
        edge_names = {e.field_name for e in edges}
        attributes = tuple(
            name for name in schema.cell(cell_name).field_names()
            if name not in edge_names
        )
        return cls(schema, cell_name, out_field, in_field, attributes)


def plain_graph_schema(directed: bool = True) -> GraphSchema:
    """Topology-only nodes: the workhorse for analytics benchmarks."""
    if directed:
        source = """
        [CellType: NodeCell]
        cell struct Node {
            [EdgeType: SimpleEdge, ReferencedCell: Node]
            List<long> Outlinks;
            [EdgeType: SimpleEdge, ReferencedCell: Node]
            List<long> Inlinks;
        }
        """
        return GraphSchema(compile_tsl(source), "Node", "Outlinks", "Inlinks")
    source = """
    [CellType: NodeCell]
    cell struct Node {
        [EdgeType: SimpleEdge, ReferencedCell: Node]
        List<long> Neighbors;
    }
    """
    return GraphSchema(compile_tsl(source), "Node", "Neighbors", None)


def social_graph_schema(directed: bool = False) -> GraphSchema:
    """Friendship graph with a Name attribute — the schema for the
    paper's people-search ("David problem") workload (Section 5.1).

    Undirected by default; ``directed=True`` splits the neighbor list
    into ``Friends`` (outgoing) and ``FriendOf`` (incoming), which is
    what reverse-edge TQL chains traverse through the fused inlinks
    path.
    """
    if directed:
        source = """
        [CellType: NodeCell]
        cell struct Person {
            string Name;
            [EdgeType: SimpleEdge, ReferencedCell: Person]
            List<long> Friends;
            [EdgeType: SimpleEdge, ReferencedCell: Person]
            List<long> FriendOf;
        }
        """
        return GraphSchema(
            compile_tsl(source), "Person", "Friends", "FriendOf",
            attribute_fields=("Name",),
        )
    source = """
    [CellType: NodeCell]
    cell struct Person {
        string Name;
        [EdgeType: SimpleEdge, ReferencedCell: Person]
        List<long> Friends;
    }
    """
    return GraphSchema(
        compile_tsl(source), "Person", "Friends", None,
        attribute_fields=("Name",),
    )


def struct_edge_schema() -> CompiledSchema:
    """Nodes whose edges are independent cells carrying rich data.

    Section 4.1: "when edges are associated with rich information, we may
    represent edges using cells ... a node will store a set of edge
    cellids."
    """
    return compile_tsl("""
    [CellType: NodeCell]
    cell struct Entity {
        string Name;
        [EdgeType: StructEdge, ReferencedCell: Relation]
        List<long> Relations;
    }
    [CellType: EdgeCell]
    cell struct Relation {
        string Kind;
        double Weight;
        long Source;
        long Target;
    }
    """)


def hyperedge_schema() -> CompiledSchema:
    """Hypergraph modelling: an edge cell stores a set of node cell ids."""
    return compile_tsl("""
    [CellType: NodeCell]
    cell struct Member {
        string Name;
        [EdgeType: HyperEdge, ReferencedCell: Group]
        List<long> Groups;
    }
    [CellType: EdgeCell]
    cell struct Group {
        string Label;
        List<long> Members;
    }
    """)
