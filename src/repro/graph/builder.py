"""Bulk graph loading into the memory cloud.

The builder buffers adjacency and attributes in plain dicts, then encodes
each node once at :meth:`GraphBuilder.finalize` — the same pattern as
Trinity's bulk importer, which writes cells once instead of reallocating
blobs edge by edge (reallocation churn is exactly what Section 6.1's
reservation mechanism exists to absorb; the ablation benchmark exercises
that path separately via incremental edge insertion).
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import QueryError
from ..memcloud import MemoryCloud
from .api import Graph
from .model import GraphSchema


class GraphBuilder:
    """Accumulates nodes/edges, then materialises a :class:`Graph`.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> from repro.graph import GraphBuilder, plain_graph_schema
    >>> from repro.memcloud import MemoryCloud
    >>> builder = GraphBuilder(MemoryCloud(ClusterConfig(machines=2)),
    ...                        plain_graph_schema(directed=True))
    >>> builder.add_edge(1, 2)
    >>> graph = builder.finalize()
    >>> graph.outlinks(1)
    [2]
    """

    def __init__(self, cloud: MemoryCloud, graph_schema: GraphSchema):
        self.cloud = cloud
        self.graph_schema = graph_schema
        self._out: dict[int, list[int]] = defaultdict(list)
        self._in: dict[int, list[int]] = defaultdict(list)
        self._attributes: dict[int, dict] = defaultdict(dict)
        self._nodes: set[int] = set()
        self._finalized = False

    def add_node(self, node_id: int, **attributes) -> None:
        """Declare a node, optionally with attribute values."""
        self._check_open()
        self._nodes.add(node_id)
        if attributes:
            unknown = set(attributes) - set(self.graph_schema.attribute_fields)
            if unknown:
                raise QueryError(
                    f"unknown attributes for "
                    f"{self.graph_schema.cell_name}: {sorted(unknown)}"
                )
            self._attributes[node_id].update(attributes)

    def add_edge(self, src: int, dst: int) -> None:
        """Add one edge; endpoints are auto-created.

        For undirected schemas the edge is mirrored into both endpoints'
        neighbor lists.
        """
        self._check_open()
        self._nodes.add(src)
        self._nodes.add(dst)
        self._out[src].append(dst)
        if self.graph_schema.directed:
            self._in[dst].append(src)
        else:
            self._out[dst].append(src)

    def add_edges(self, edges) -> None:
        """Add an iterable of (src, dst) pairs."""
        for src, dst in edges:
            self.add_edge(src, dst)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        total = sum(len(v) for v in self._out.values())
        return total if self.graph_schema.directed else total // 2

    def finalize(self) -> Graph:
        """Encode every node into its blob and store it in the cloud."""
        self._check_open()
        self._finalized = True
        schema = self.graph_schema
        node_type = schema.node_type
        for node_id in self._nodes:
            record = dict(self._attributes.get(node_id, ()))
            record[schema.out_field] = self._out.get(node_id, [])
            if schema.in_field is not None:
                record[schema.in_field] = self._in.get(node_id, [])
            self.cloud.put(node_id, node_type.encode(record))
        return Graph(self.cloud, schema, sorted(self._nodes))

    def _check_open(self) -> None:
        if self._finalized:
            raise QueryError("GraphBuilder already finalized")
