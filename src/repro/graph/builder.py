"""Bulk graph loading into the memory cloud.

The builder buffers edges in their arrival order, then encodes each node
once at :meth:`GraphBuilder.finalize` — the same pattern as Trinity's
bulk importer, which writes cells once instead of reallocating blobs
edge by edge (reallocation churn is exactly what Section 6.1's
reservation mechanism exists to absorb; the ablation benchmark exercises
that path separately via incremental edge insertion).

Two ingest/store speeds share one semantics:

* the scalar path — :meth:`~GraphBuilder.add_edge` per edge and one
  ``cloud.put`` per node at ``finalize(bulk=False)``;
* the batched path — :meth:`~GraphBuilder.add_edges` accepts a numpy
  ``(m, 2)`` edge array, and ``finalize(bulk=True)`` (the default)
  groups all buffered edges per endpoint with one stable sort per
  direction, encodes every adjacency list as a slice of one contiguous
  ``int64`` byte blob, and stores all nodes with ``cloud.bulk_put``.

Either way edges are only *buffered* at ingest; all grouping happens at
finalize, so the neighbor order is the arrival order in both paths and
the finalized blobs are bit-identical — verified by
``finalize(cross_check=True)`` and the equivalence test suite.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import defaultdict

import numpy as np

from ..errors import QueryError, TrunkFullError
from ..memcloud import MemoryCloud
from ..tsl.batch import batch_encoder_for, encode_varint_small
from ..tsl.layout import encode_adjacency_segments, install_layout_policy
from ..tsl.types import AdjacencyListType, LONG, ListType
from ..utils.sorting import stable_argsort
from .api import Graph
from .model import GraphSchema

_INT64 = np.dtype("<i8")
_MISSING = object()

_FORK = multiprocessing.get_context("fork")


def _bulk_worker_main(builder, groups, out_group, in_group, cross_check,
                      conn) -> None:
    """Worker half of the parallel bulk load (runs in a forked child).

    Encodes its trunks' cells and lays the bytes out through the shared
    arenas with :meth:`MemoryTrunk.bulk_write_fresh`; all index/metric
    state it mutates is fork-private and discarded.  Ships back the
    per-trunk payload sizes the coordinator needs to adopt the cells.
    """
    try:
        results = []
        for trunk_id, _indices, uids in groups:
            blobs = builder._encode_subset(uids, out_group, in_group)
            if cross_check:
                node_type = builder.graph_schema.node_type
                sub_out = builder._subset_group(out_group, set(uids))
                sub_in = (builder._subset_group(in_group, set(uids))
                          if in_group is not None else None)
                for uid, record, blob in zip(
                        uids, builder._records(uids, sub_out, sub_in),
                        blobs):
                    if node_type.encode(record) != blob:
                        raise QueryError(
                            f"bulk encoder diverged from scalar TSL "
                            f"encoding for node {uid}"
                        )
            sizes = builder.cloud.trunks[trunk_id].bulk_write_fresh(
                uids, blobs
            )
            results.append((trunk_id, sizes.tolist()))
        conn.send(("ok", results))
    except TrunkFullError:
        conn.send(("full", traceback.format_exc()))
    except BaseException:
        conn.send(("err", traceback.format_exc()))
    finally:
        conn.close()
        os._exit(0)


class GraphBuilder:
    """Accumulates nodes/edges, then materialises a :class:`Graph`.

    Examples
    --------
    >>> from repro.config import ClusterConfig
    >>> from repro.graph import GraphBuilder, plain_graph_schema
    >>> from repro.memcloud import MemoryCloud
    >>> builder = GraphBuilder(MemoryCloud(ClusterConfig(machines=2)),
    ...                        plain_graph_schema(directed=True))
    >>> builder.add_edge(1, 2)
    >>> graph = builder.finalize()
    >>> graph.outlinks(1)
    [2]
    """

    def __init__(self, cloud: MemoryCloud, graph_schema: GraphSchema):
        self.cloud = cloud
        self.graph_schema = graph_schema
        install_layout_policy(
            graph_schema.node_type,
            cloud.config.memory.resolved_layout_policy())
        self._chunks: list[np.ndarray] = []   # (m, 2) int64, arrival order
        self._loose: list[tuple[int, int]] = []  # add_edge buffer
        self._attributes: dict[int, dict] = defaultdict(dict)
        self._explicit_nodes: set[int] = set()
        self._edge_total = 0
        self._finalized = False

    def add_node(self, node_id: int, **attributes) -> None:
        """Declare a node, optionally with attribute values."""
        self._check_open()
        self._explicit_nodes.add(node_id)
        if attributes:
            unknown = set(attributes) - set(self.graph_schema.attribute_fields)
            if unknown:
                raise QueryError(
                    f"unknown attributes for "
                    f"{self.graph_schema.cell_name}: {sorted(unknown)}"
                )
            self._attributes[node_id].update(attributes)

    def add_edge(self, src: int, dst: int) -> None:
        """Add one edge; endpoints are auto-created.

        For undirected schemas the edge is mirrored into both endpoints'
        neighbor lists (at finalize, like everything else).
        """
        self._check_open()
        self._loose.append((src, dst))
        self._edge_total += 1

    def add_edges(self, edges) -> None:
        """Add edges from an iterable of (src, dst) pairs or a numpy array.

        An ``(m, 2)`` integer array (or anything cleanly convertible to
        one) is buffered as-is — the vectorized grouping at finalize
        produces neighbor lists in exactly the order a scalar
        :meth:`add_edge` loop would have appended, including the
        interleaved mirror entries of undirected schemas, so the
        finalized blobs are bit-identical.
        """
        self._check_open()
        if not isinstance(edges, np.ndarray):
            edges = list(edges)
            if not edges:
                return
            try:
                array = np.asarray(edges, dtype=np.int64)
            except (ValueError, TypeError, OverflowError):
                array = None
            if array is None or array.ndim != 2 or array.shape[1] != 2:
                for src, dst in edges:
                    self.add_edge(src, dst)
                return
            edges = array
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise QueryError(
                f"edge array must have shape (m, 2), got {edges.shape}"
            )
        if not len(edges):
            return
        self._flush_loose()
        self._chunks.append(edges.astype(np.int64, copy=False))
        self._edge_total += len(edges)

    def _flush_loose(self) -> None:
        if self._loose:
            chunk = np.asarray(self._loose, dtype=np.int64).reshape(-1, 2)
            self._chunks.append(chunk)
            self._loose = []

    def _all_edges(self) -> np.ndarray | None:
        """Every buffered edge, arrival order, as one (m, 2) array."""
        self._flush_loose()
        if not self._chunks:
            return None
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks)]
        return self._chunks[0]

    @staticmethod
    def _group(keys: np.ndarray, values: np.ndarray):
        """Stable grouping: (keys, starts, ends, sorted values).

        The stable sort keeps each key's values in arrival order —
        exactly the per-key append order of a scalar edge loop.
        """
        order = stable_argsort(keys)
        sorted_keys = keys[order]
        sorted_values = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.append(boundaries, len(sorted_keys))
        return (sorted_keys[starts].tolist(), starts.tolist(),
                ends.tolist(), sorted_values)

    def _grouped_directions(self, edges: np.ndarray | None):
        """(out_group, in_group_or_None) for the buffered edges."""
        if edges is None:
            empty = ([], [], [], np.empty(0, dtype=np.int64))
            return empty, (empty if self.graph_schema.directed else None)
        if self.graph_schema.directed:
            return (self._group(edges[:, 0], edges[:, 1]),
                    self._group(edges[:, 1], edges[:, 0]))
        # Interleave (src, dst) with its mirror (dst, src) so grouping
        # reproduces the scalar loop's append order exactly.
        mirrored = np.empty((2 * len(edges), 2), dtype=np.int64)
        mirrored[0::2] = edges
        mirrored[1::2] = edges[:, ::-1]
        return self._group(mirrored[:, 0], mirrored[:, 1]), None

    @property
    def node_count(self) -> int:
        return len(self._node_set())

    def _node_set(self) -> set[int]:
        nodes = set(self._explicit_nodes)
        edges = self._all_edges()
        if edges is not None:
            nodes.update(np.unique(edges).tolist())
        return nodes

    @property
    def edge_count(self) -> int:
        """Edges added so far (a running counter, not a recount)."""
        return self._edge_total

    def finalize(self, bulk: bool = True, cross_check: bool = False,
                 backend: str = "in_process",
                 workers: int | None = None) -> Graph:
        """Encode every node into its blob and store it in the cloud.

        ``bulk=True`` (default) encodes adjacency lists directly from the
        grouped edge arrays — one contiguous byte blob per direction,
        sliced per node — and stores everything with ``cloud.bulk_put``.
        ``cross_check=True`` additionally re-encodes every node through
        the scalar TSL encoder and asserts the blobs are bit-identical
        before anything is stored (mirroring ``BspEngine``'s paranoia
        mode).

        ``backend="shared_memory"`` fans the encode+store work out to
        forked worker processes, one trunk partition each, writing cell
        bytes directly into the cloud's shared arenas; the coordinator
        then adopts the cells, replaying the exact accounting of the
        in-process bulk path.  Requires a cloud built with
        ``arena_factory=shared_arena_factory()`` and pristine trunks —
        otherwise (or if a batch overflows a trunk's straight-line
        region) it falls back to the in-process path, same results.
        """
        self._check_open()
        self._finalized = True
        schema = self.graph_schema
        out_group, in_group = self._grouped_directions(self._all_edges())
        nodes = set(self._explicit_nodes)
        nodes.update(out_group[0])
        if in_group is not None:
            nodes.update(in_group[0])
        node_ids = sorted(nodes)
        use_bulk = (bulk and hasattr(self.cloud, "bulk_put")
                    and self._adjacency_is_long())
        if (use_bulk and backend == "shared_memory"
                and self._parallel_eligible(node_ids)):
            done = self._finalize_parallel(node_ids, out_group, in_group,
                                           cross_check, workers)
            if done:
                return Graph(self.cloud, schema, node_ids)
            # Worker reported a full trunk: nothing was adopted, the
            # trunks are still pristine — load in-process instead.
        if use_bulk:
            blobs = self._bulk_blobs(node_ids, out_group, in_group)
            if cross_check:
                node_type = schema.node_type
                for node_id, record, blob in zip(
                        node_ids,
                        self._records(node_ids, out_group, in_group),
                        blobs):
                    if node_type.encode(record) != blob:
                        raise QueryError(
                            f"bulk encoder diverged from scalar TSL "
                            f"encoding for node {node_id}"
                        )
            self.cloud.bulk_put(node_ids, blobs)
        else:
            node_type = schema.node_type
            records = self._records(node_ids, out_group, in_group)
            if bulk and hasattr(self.cloud, "bulk_put"):
                # Adjacency type without an int64 twin: still batch the
                # store, encoding through the compiled column encoder.
                blobs = batch_encoder_for(node_type).encode_many(records)
                self.cloud.bulk_put(node_ids, blobs)
            else:
                for node_id, record in zip(node_ids, records):
                    self.cloud.put(node_id, node_type.encode(record))
        return Graph(self.cloud, schema, node_ids)

    def _adjacency_is_long(self) -> bool:
        schema = self.graph_schema
        fields = dict(schema.node_type.fields)
        for name in filter(None, (schema.out_field, schema.in_field)):
            tsl_type = fields.get(name)
            if not (isinstance(tsl_type, ListType)
                    and tsl_type.element is LONG):
                return False
        return True

    @staticmethod
    def _adjacency_column(group, ids_arr: np.ndarray, empty: bytes,
                          tsl_type: ListType) -> list[bytes]:
        """Encoded ``List<long>`` blobs, one per node in ``ids_arr`` order.

        Adjacency-typed fields route through the vectorized segment
        encoder — the same chooser and payload generator the scalar TSL
        encoder delegates to, so bulk and scalar blobs are bit-identical
        across every layout mix by construction.  Plain ``List<long>``
        fields keep the original one-``tobytes`` slicing.  Nodes with no
        neighbors in this direction get the empty-list encoding either
        way (``b"\\x00"`` is both formats' empty header).
        """
        keys, starts, ends, sorted_values = group
        column = [empty] * len(ids_arr)
        if not keys:
            return column
        positions = np.searchsorted(
            ids_arr, np.asarray(keys, dtype=np.int64)).tolist()
        if isinstance(tsl_type, AdjacencyListType):
            encoded = encode_adjacency_segments(
                sorted_values.astype(_INT64, copy=False),
                np.asarray(starts, dtype=np.int64),
                np.asarray(ends, dtype=np.int64),
                tsl_type.policy,
            )
            for position, blob in zip(positions, encoded):
                column[position] = blob
            return column
        blob = sorted_values.astype(_INT64, copy=False).tobytes()
        for position, start, end in zip(positions, starts, ends):
            column[position] = (encode_varint_small(end - start)
                                + blob[8 * start:8 * end])
        return column

    def _bulk_blobs(self, node_ids, out_group, in_group) -> list[bytes]:
        """Assemble every node's cell blob in schema field order."""
        schema = self.graph_schema
        empty = encode_varint_small(0)
        ids_arr = np.fromiter(node_ids, dtype=np.int64, count=len(node_ids))
        attributes = self._attributes
        missing = _MISSING
        columns: list[list[bytes]] = []
        for name, tsl_type in schema.node_type.fields:
            if name == schema.out_field:
                columns.append(
                    self._adjacency_column(out_group, ids_arr, empty,
                                           tsl_type))
            elif name == schema.in_field:
                columns.append(
                    self._adjacency_column(in_group, ids_arr, empty,
                                           tsl_type))
            else:
                encode = tsl_type.encode
                default_blob = encode(tsl_type.default())
                column = []
                for node_id in node_ids:
                    attrs = attributes.get(node_id)
                    value = attrs.get(name, missing) if attrs else missing
                    column.append(default_blob if value is missing
                                  else encode(value))
                columns.append(column)
        if len(columns) == 1:
            return columns[0]
        if len(columns) == 2:
            return [a + b for a, b in zip(columns[0], columns[1])]
        return [b"".join(parts) for parts in zip(*columns)]

    @staticmethod
    def _subset_group(group, wanted):
        """Restrict a ``(keys, starts, ends, sorted_values)`` group.

        Keeps only keys in ``wanted``; the value array is shared, so a
        kept key's blob slice stays byte-identical to the full group's.
        """
        keys, starts, ends, sorted_values = group
        filtered = [(k, s, e)
                    for k, s, e in zip(keys, starts, ends) if k in wanted]
        if filtered:
            sub_keys, sub_starts, sub_ends = (list(t)
                                              for t in zip(*filtered))
        else:
            sub_keys, sub_starts, sub_ends = [], [], []
        return sub_keys, sub_starts, sub_ends, sorted_values

    def _encode_subset(self, sub_ids, out_group, in_group) -> list[bytes]:
        """Cell blobs for a sorted subset of the node ids.

        ``_trunk_groups`` preserves input order within a trunk and the
        full id list is sorted, so each trunk's subset is itself sorted —
        which is all ``_adjacency_column``'s searchsorted needs.
        """
        wanted = set(sub_ids)
        sub_out = self._subset_group(out_group, wanted)
        sub_in = (self._subset_group(in_group, wanted)
                  if in_group is not None else None)
        return self._bulk_blobs(sub_ids, sub_out, sub_in)

    def _parallel_eligible(self, node_ids) -> bool:
        """Can this load use the forked shared-arena fast path?

        Workers lay bytes straight into the trunks' arenas from offset
        zero, so the arenas must be OS-shared and every target trunk
        pristine; a shadow replica would also need its own copy of every
        write, which the workers don't produce.
        """
        cloud = self.cloud
        return bool(
            node_ids
            and getattr(cloud, "arenas_shared", False)
            and getattr(cloud, "_shadow", None) is None
            and all(trunk.is_pristine for trunk in cloud.trunks.values())
        )

    def _finalize_parallel(self, node_ids, out_group, in_group,
                           cross_check, workers) -> bool:
        """Coordinator half of the parallel bulk load.

        Partitions the trunk groups into contiguous blocks, forks one
        worker per block (inheriting the builder and shared arenas), and
        adopts the written cells with ``cloud.bulk_put_adopt`` once every
        worker reports success.  Returns ``False`` — nothing stored,
        trunks still pristine — if any worker overflows a trunk, so the
        caller can fall back to the in-process path.
        """
        groups = list(self.cloud.trunk_groups(node_ids))
        requested = workers or os.cpu_count() or 1
        worker_count = max(1, min(requested, len(groups)))
        blocks = [
            [groups[i] for i in block.tolist()] for block in
            np.array_split(np.arange(len(groups)), worker_count)
            if len(block)
        ]
        procs = []
        conns = []
        for block in blocks:
            parent, child = _FORK.Pipe()
            proc = _FORK.Process(
                target=_bulk_worker_main,
                args=(self, block, out_group, in_group, cross_check, child),
                daemon=True,
            )
            proc.start()
            child.close()
            procs.append(proc)
            conns.append(parent)
        trunk_sizes: dict[int, np.ndarray] = {}
        failure: str | None = None
        overflow = False
        try:
            for worker_id, conn in enumerate(conns):
                try:
                    status, payload = conn.recv()
                except (EOFError, OSError):
                    status, payload = "err", (
                        f"bulk-load worker {worker_id} died"
                    )
                if status == "ok":
                    for trunk_id, sizes in payload:
                        trunk_sizes[trunk_id] = np.asarray(
                            sizes, dtype=np.int64)
                elif status == "full" and failure is None:
                    overflow = True
                elif failure is None:
                    failure = str(payload)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=5)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        if failure is not None:
            raise QueryError(
                f"parallel bulk load failed in a worker:\n{failure}"
            )
        if overflow:
            return False
        self.cloud.bulk_put_adopt(node_ids, trunk_sizes)
        return True

    def _records(self, node_ids, out_group, in_group) -> list[dict]:
        """Python-dict records per node (scalar path and cross-check)."""
        schema = self.graph_schema

        def as_lists(group):
            keys, starts, ends, sorted_values = group
            values = sorted_values.tolist()
            return {key: values[start:end]
                    for key, start, end in zip(keys, starts, ends)}

        out_lists = as_lists(out_group)
        in_lists = as_lists(in_group) if in_group is not None else None
        records = []
        for node_id in node_ids:
            record = dict(self._attributes.get(node_id, ()))
            record[schema.out_field] = out_lists.get(node_id, [])
            if schema.in_field is not None:
                record[schema.in_field] = (in_lists or {}).get(node_id, [])
            records.append(record)
        return records

    def _check_open(self) -> None:
        if self._finalized:
            raise QueryError("GraphBuilder already finalized")
