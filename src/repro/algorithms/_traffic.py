"""Shared superstep traffic model for the vectorised analytics runners.

The vertex engine (:mod:`repro.compute.bsp`) counts messages as it routes
them; the vectorised runners compute the *same* quantities analytically
from the CSR structure — legitimate because the restrictive model makes
the communication pattern a pure function of topology and frontier
("the communication pattern is predictable iteration after iteration",
Section 5.3).  Tests assert both paths agree.

Hub handling mirrors the engine: a vertex whose out-degree reaches the
hub threshold ships its (uniform) value once per destination machine
rather than once per edge.
"""

from __future__ import annotations

import numpy as np

from ..config import ComputeParams
from ..net.simnet import ParallelRound, SimNetwork


class TrafficModel:
    """Precomputed per-edge machine routing for one topology."""

    def __init__(self, topology, hub_fraction: float = 0.01,
                 hub_buffering: bool = True, message_bytes: int = 16):
        self.topology = topology
        self.message_bytes = message_bytes
        n = topology.n
        machines = topology.machine_count
        self.machines = machines
        degrees = topology.out_degrees()
        if hub_buffering and n and hub_fraction > 0:
            quantile = float(np.quantile(degrees, 1.0 - hub_fraction))
            self.hub_threshold = max(2.0, quantile)
        else:
            self.hub_threshold = float("inf")
        self.is_hub = degrees >= self.hub_threshold

        # Per-edge source vertex and machine-pair id.
        self.edge_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        src_machine = topology.machine[self.edge_src]
        dst_machine = topology.machine[topology.out_indices]
        self.edge_pair = (src_machine.astype(np.int64) * machines
                          + dst_machine.astype(np.int64))

        # Hub vertices: per-machine-pair message counts when the hub
        # broadcasts (1 per distinct destination machine).
        self._hub_pair_counts = np.zeros(machines * machines, dtype=np.int64)
        self._hub_pairs_by_vertex: dict[int, np.ndarray] = {}
        hub_vertices = np.nonzero(self.is_hub)[0]
        for v in hub_vertices:
            start, end = topology.out_indptr[v], topology.out_indptr[v + 1]
            dsts = np.unique(dst_machine[start:end])
            pairs = int(topology.machine[v]) * machines + dsts.astype(np.int64)
            self._hub_pairs_by_vertex[int(v)] = pairs
            np.add.at(self._hub_pair_counts, pairs, 1)

        # Non-hub per-pair counts for the full-broadcast case.
        nonhub_edges = ~self.is_hub[self.edge_src]
        self._nonhub_pair_counts = np.bincount(
            self.edge_pair[nonhub_edges], minlength=machines * machines
        )
        self._full_pair_counts = (
            self._nonhub_pair_counts + self._hub_pair_counts
        )

    # -- traffic for one superstep ----------------------------------------

    def full_broadcast_traffic(self) -> np.ndarray:
        """Message counts per machine pair when *every* vertex broadcasts
        to all out-neighbors (PageRank, WCC)."""
        return self._full_pair_counts

    def frontier_traffic(self, frontier: np.ndarray) -> np.ndarray:
        """Message counts per machine pair when only ``frontier`` (bool
        mask over vertices) broadcasts (BFS, SSSP waves)."""
        active_edges = frontier[self.edge_src]
        nonhub = active_edges & ~self.is_hub[self.edge_src]
        counts = np.bincount(
            self.edge_pair[nonhub],
            minlength=self.machines * self.machines,
        ).astype(np.int64)
        for v in np.nonzero(frontier & self.is_hub)[0]:
            np.add.at(counts, self._hub_pairs_by_vertex[int(v)], 1)
        return counts

    # -- charging a superstep ----------------------------------------------

    def charge_superstep(self, network: SimNetwork, params: ComputeParams,
                         active_per_machine: np.ndarray,
                         edges_per_machine: np.ndarray,
                         pair_counts: np.ndarray) -> float:
        """Build a :class:`ParallelRound` for one superstep and charge it.

        ``active_per_machine[m]`` vertices ran compute on machine ``m``,
        scanning ``edges_per_machine[m]`` adjacency entries;
        ``pair_counts`` is a flattened machines x machines message-count
        matrix.  Returns elapsed simulated time including the barrier.
        """
        round_ = ParallelRound(network)
        for machine in range(self.machines):
            compute = (
                float(active_per_machine[machine])
                * (params.vertex_compute_cost + params.cell_access_cost)
                + float(edges_per_machine[machine]) * params.edge_scan_cost
            )
            if compute:
                round_.add_compute(machine, compute)
        nonzero = np.nonzero(pair_counts)[0]
        for pair in nonzero:
            src, dst = divmod(int(pair), self.machines)
            count = int(pair_counts[pair])
            round_.add_message(src, dst, count * self.message_bytes, count)
        elapsed = round_.finish(parallelism=params.threads_per_machine)
        network.clock.advance(params.barrier_cost)
        elapsed += params.barrier_cost
        # Same superstep series the vertex engine records, so a snapshot
        # looks identical whichever execution path produced the run.
        network.obs.counter("bsp.superstep.total").inc()
        network.obs.histogram("span.bsp.superstep.seconds").observe(elapsed)
        return elapsed

    # -- helpers -------------------------------------------------------------

    def per_machine_vertices(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Vertices per machine (optionally restricted to a mask)."""
        if mask is None:
            return np.bincount(self.topology.machine,
                               minlength=self.machines).astype(np.int64)
        return np.bincount(self.topology.machine[mask],
                           minlength=self.machines).astype(np.int64)

    def per_machine_edges(self, mask: np.ndarray | None = None) -> np.ndarray:
        """Out-edges per machine (optionally only edges from masked
        sources)."""
        degrees = self.topology.out_degrees()
        if mask is None:
            weights = degrees
            machines = self.topology.machine
        else:
            weights = degrees[mask]
            machines = self.topology.machine[mask]
        return np.bincount(
            machines, weights=weights, minlength=self.machines
        ).astype(np.int64)

    def remote_fraction(self) -> float:
        """Fraction of full-broadcast messages that cross machines."""
        counts = self._full_pair_counts.reshape(self.machines, self.machines)
        total = counts.sum()
        if not total:
            return 0.0
        return float(1.0 - np.trace(counts) / total)
