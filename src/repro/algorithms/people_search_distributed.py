"""People search executed through real cluster protocols (Section 5.1).

:func:`repro.algorithms.people_search.people_search` computes the answer
directly with cost accounting; this module runs the *same query through
the actual machinery*: a TSL-declared protocol, per-slave message
handlers, and the one-sided asynchronous runtime with message packing.
"The algorithm simply sends asynchronous requests recursively to remote
machines" — each hop, every slave expands its share of the frontier
locally and sends the next-hop candidates to their owning slaves.

Used by the integration tests to prove the fast-path implementation and
the protocol implementation agree, and by the examples to show the TSL
protocol workflow end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import QueryError
from ..tsl import compile_tsl

SEARCH_TSL = """
struct ExpandRequest {
    string Target;
    List<long> Frontier;
}
struct ExpandReply {
    List<long> Matches;
    List<long> Next;
}
protocol ExpandFrontier {
    Type: Syn;
    Request: ExpandRequest;
    Response: ExpandReply;
}
"""


@dataclass
class DistributedSearchResult:
    """Matches plus protocol-level accounting."""

    matches: list[int] = field(default_factory=list)
    visited: int = 0
    protocol_calls: int = 0
    elapsed: float = 0.0


def install_search_handlers(cluster, graph) -> None:
    """Register the ExpandFrontier handler on every slave.

    The handler is pure local work: expand the frontier nodes this slave
    owns, name-check the discovered neighbors it owns, and return both
    the matches and the candidates belonging to other machines.
    """
    if "Name" not in graph.graph_schema.attribute_fields:
        raise QueryError("distributed search needs a Name attribute")
    schema = compile_tsl(SEARCH_TSL)
    cluster.runtime.schema = _merged_schema(cluster.runtime.schema, schema)

    def make_handler(machine_id: int):
        def handler(message, request):
            matches = []
            next_frontier = []
            for node in request["Frontier"]:
                for neighbor in graph.outlinks(node):
                    next_frontier.append(neighbor)
            # Name-check locally-owned candidates here; foreign ones are
            # returned for their owners to check next hop.
            for node in list(next_frontier):
                if (graph.machine_of(node) == machine_id
                        and graph.attribute(node, "Name")
                        == request["Target"]):
                    matches.append(node)
            return {"Matches": matches, "Next": next_frontier}
        return handler

    for machine_id, slave in cluster.slaves.items():
        slave.register_protocol("ExpandFrontier", make_handler(machine_id))


def _merged_schema(existing, extra):
    """Runtime schemas are additive; merge protocol tables."""
    if existing is None:
        return extra
    existing.protocols.update(extra.protocols)
    existing.structs.update(extra.structs)
    return existing


def distributed_people_search(cluster, graph, start: int, name: str,
                              hops: int = 3) -> DistributedSearchResult:
    """Run the k-hop name search via ExpandFrontier protocol calls.

    A client drives the wave: per hop it groups the frontier by owning
    slave, issues one ExpandFrontier call per slave, merges the replies,
    dedups against the visited set, and name-checks candidates whose
    owner differs from their discoverer (mirroring the handler's local
    check).  Results are identical to the fast-path implementation.
    """
    if hops < 1:
        raise QueryError("hops must be >= 1")
    client = cluster.new_client()
    result = DistributedSearchResult()
    visited = {start}
    frontier = [start]
    matched: set[int] = set()
    before = cluster.network.clock.now
    for _ in range(hops):
        if not frontier:
            break
        by_machine: dict[int, list[int]] = {}
        for node in frontier:
            by_machine.setdefault(graph.machine_of(node), []).append(node)
        next_frontier: list[int] = []
        candidates: list[int] = []
        for machine_id, nodes in by_machine.items():
            reply = client.call(machine_id, "ExpandFrontier",
                                {"Target": name, "Frontier": nodes})
            result.protocol_calls += 1
            matched.update(reply["Matches"])
            candidates.extend(reply["Next"])
        for node in candidates:
            if node in visited:
                continue
            visited.add(node)
            next_frontier.append(node)
            if graph.attribute(node, "Name") == name:
                matched.add(node)
        frontier = next_frontier
    matched.discard(start)
    # Matches reported by handlers may include already-visited nodes
    # (the handler cannot see the global visited set); restrict to the
    # explored neighborhood.
    result.matches = sorted(m for m in matched if m in visited)
    result.visited = len(visited) - 1
    result.elapsed = cluster.network.clock.now - before
    return result
