"""People search executed through real cluster protocols (Section 5.1).

:func:`repro.algorithms.people_search.people_search` computes the answer
directly with cost accounting; this module runs the *same query through
the actual machinery*: a TSL-declared protocol, per-slave message
handlers, and the one-sided asynchronous runtime with message packing.
"The algorithm simply sends asynchronous requests recursively to remote
machines" — each hop, every slave expands its share of the frontier
locally and sends the next-hop candidates to their owning slaves.

Both sides run on the batched traversal path by default: the handler
expands its whole frontier share with one ``outlinks_batch`` CSR decode
and name-checks its owned candidates with one ``read_field_batch``; the
client routes the frontier with one vectorized ``machine_of_batch`` pass
(one packed ExpandRequest per destination slave, in scalar
first-appearance order) and dedups replies with array operations.
``batch=False`` keeps the per-node loops; ``cross_check=True`` replays
the scalar logic alongside the batched one and raises on divergence.

Used by the integration tests to prove the fast-path implementation and
the protocol implementation agree, and by the examples to show the TSL
protocol workflow end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence
from ..tsl import compile_tsl

SEARCH_TSL = """
struct ExpandRequest {
    string Target;
    List<long> Frontier;
}
struct ExpandReply {
    List<long> Matches;
    List<long> Next;
}
protocol ExpandFrontier {
    Type: Syn;
    Request: ExpandRequest;
    Response: ExpandReply;
}
"""


@dataclass
class DistributedSearchResult:
    """Matches plus protocol-level accounting."""

    matches: list[int] = field(default_factory=list)
    visited: int = 0
    protocol_calls: int = 0
    elapsed: float = 0.0


def install_search_handlers(cluster, graph, batch: bool = True,
                            cross_check: bool = False) -> None:
    """Register the ExpandFrontier handler on every slave.

    The handler is pure local work: expand the frontier nodes this slave
    owns, name-check the discovered neighbors it owns, and return both
    the matches and the candidates belonging to other machines.  With
    ``batch`` the expansion is one CSR decode and the name check one
    column read; ``cross_check=True`` also replays the scalar handler
    and raises :class:`~repro.memcloud.cloud.BulkPathDivergence` if the
    replies differ.
    """
    if "Name" not in graph.graph_schema.attribute_fields:
        raise QueryError("distributed search needs a Name attribute")
    schema = compile_tsl(SEARCH_TSL)
    cluster.runtime.schema = _merged_schema(cluster.runtime.schema, schema)

    def scalar_expand(machine_id: int, request) -> dict:
        matches = []
        next_frontier = []
        for node in request["Frontier"]:
            for neighbor in graph.outlinks(node):
                next_frontier.append(neighbor)
        # Name-check locally-owned candidates here; foreign ones are
        # returned for their owners to check next hop.
        for node in list(next_frontier):
            if (graph.machine_of(node) == machine_id
                    and graph.attribute(node, "Name")
                    == request["Target"]):
                matches.append(node)
        return {"Matches": matches, "Next": next_frontier}

    def batch_expand(machine_id: int, request) -> dict:
        frontier = np.asarray(request["Frontier"], dtype=np.int64)
        if not len(frontier):
            return {"Matches": [], "Next": []}
        _, flat = graph.outlinks_batch(frontier, cross_check=cross_check)
        matches: list[int] = []
        if len(flat):
            local = flat[graph.machine_of_batch(flat) == machine_id]
            if len(local):
                names = graph.read_field_batch(local, "Name",
                                               cross_check=cross_check)
                target = request["Target"]
                matches = [int(node) for node, node_name
                           in zip(local.tolist(), names)
                           if node_name == target]
        return {"Matches": matches, "Next": flat.tolist()}

    def make_handler(machine_id: int):
        def handler(message, request):
            if not batch:
                return scalar_expand(machine_id, request)
            reply = batch_expand(machine_id, request)
            if cross_check:
                shadow = scalar_expand(machine_id, request)
                if reply != shadow:
                    raise BulkPathDivergence(
                        f"ExpandFrontier batch handler on machine "
                        f"{machine_id} diverges from scalar: "
                        f"{reply!r} != {shadow!r}"
                    )
            return reply
        return handler

    for machine_id, slave in cluster.slaves.items():
        slave.register_protocol("ExpandFrontier", make_handler(machine_id))


def _merged_schema(existing, extra):
    """Runtime schemas are additive; merge protocol tables."""
    if existing is None:
        return extra
    existing.protocols.update(extra.protocols)
    existing.structs.update(extra.structs)
    return existing


def distributed_people_search(cluster, graph, start: int, name: str,
                              hops: int = 3, batch: bool = True,
                              cross_check: bool = False
                              ) -> DistributedSearchResult:
    """Run the k-hop name search via ExpandFrontier protocol calls.

    A client drives the wave: per hop it groups the frontier by owning
    slave, issues one ExpandFrontier call per slave, merges the replies,
    dedups against the visited set, and name-checks candidates whose
    owner differs from their discoverer (mirroring the handler's local
    check).  Results are identical to the fast-path implementation.

    With ``batch`` the client-side routing, dedup and name check are
    vectorized (identical call order and replies, so the simulated clock
    advances identically); ``cross_check=True`` also replays the scalar
    dedup per hop and raises on divergence.
    """
    if hops < 1:
        raise QueryError("hops must be >= 1")
    if not batch:
        return _client_scalar(cluster, graph, start, name, hops)
    return _client_batch(cluster, graph, start, name, hops, cross_check)


def _client_scalar(cluster, graph, start: int, name: str,
                   hops: int) -> DistributedSearchResult:
    client = cluster.new_client()
    result = DistributedSearchResult()
    visited = {start}
    frontier = [start]
    matched: set[int] = set()
    before = cluster.network.clock.now
    for _ in range(hops):
        if not frontier:
            break
        by_machine: dict[int, list[int]] = {}
        for node in frontier:
            by_machine.setdefault(graph.machine_of(node), []).append(node)
        next_frontier: list[int] = []
        candidates: list[int] = []
        for machine_id, nodes in by_machine.items():
            reply = client.call(machine_id, "ExpandFrontier",
                                {"Target": name, "Frontier": nodes})
            result.protocol_calls += 1
            matched.update(reply["Matches"])
            candidates.extend(reply["Next"])
        for node in candidates:
            if node in visited:
                continue
            visited.add(node)
            next_frontier.append(node)
            if graph.attribute(node, "Name") == name:
                matched.add(node)
        frontier = next_frontier
    matched.discard(start)
    # Matches reported by handlers may include already-visited nodes
    # (the handler cannot see the global visited set); restrict to the
    # explored neighborhood.
    result.matches = sorted(m for m in matched if m in visited)
    result.visited = len(visited) - 1
    result.elapsed = cluster.network.clock.now - before
    return result


def _client_batch(cluster, graph, start: int, name: str, hops: int,
                  cross_check: bool) -> DistributedSearchResult:
    client = cluster.new_client()
    result = DistributedSearchResult()
    visited = np.asarray([start], dtype=np.int64)          # kept sorted
    frontier = np.asarray([start], dtype=np.int64)
    matched: set[int] = set()
    before = cluster.network.clock.now
    for _ in range(hops):
        if not len(frontier):
            break
        owners = graph.machine_of_batch(frontier)
        _, first_positions = np.unique(owners, return_index=True)
        group_machines = owners[np.sort(first_positions)]
        candidates: list[int] = []
        for machine_id in group_machines.tolist():
            nodes = frontier[owners == machine_id].tolist()
            reply = client.call(machine_id, "ExpandFrontier",
                                {"Target": name, "Frontier": nodes})
            result.protocol_calls += 1
            matched.update(reply["Matches"])
            candidates.extend(reply["Next"])
        cand = np.asarray(candidates, dtype=np.int64)
        fresh = cand[~np.isin(cand, visited)] if len(cand) else cand
        _, first_seen = np.unique(fresh, return_index=True)
        new = fresh[np.sort(first_seen)]
        if cross_check:
            seen = set(visited.tolist())
            shadow_new = [n for n in candidates
                          if n not in seen and not seen.add(n)]
            if new.tolist() != shadow_new:
                raise BulkPathDivergence(
                    f"distributed search batch dedup diverges from "
                    f"scalar: {new.tolist()!r} != {shadow_new!r}"
                )
        if len(new):
            visited = np.union1d(visited, new)
            names = graph.read_field_batch(new, "Name",
                                           cross_check=cross_check)
            matched.update(int(node) for node, node_name
                           in zip(new.tolist(), names)
                           if node_name == name)
        frontier = new
    matched.discard(start)
    visited_set = set(visited.tolist())
    result.matches = sorted(m for m in matched if m in visited_set)
    result.visited = len(visited_set) - 1
    result.elapsed = cluster.network.clock.now - before
    return result
