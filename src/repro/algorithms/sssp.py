"""Single-source shortest paths — the paper's second canonical
restrictive workload ("PageRank and shortest path", Section 5.3).

:class:`SsspProgram` is the classic Pregel SSSP; :func:`sssp` is a
vectorised frontier (Bellman-Ford) runner over optionally weighted edges.
With unit weights it degenerates to BFS, which the tests exploit for
cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel

INFINITY = float("inf")


class SsspProgram(VertexProgram):
    """Vertex-centric SSSP with per-edge weight lookup.

    Weights come in one of two forms (mutually exclusive):

    * ``weights`` — a dict mapping (src, dst) dense pairs to edge weight,
      missing pairs defaulting to 1; general but unvectorizable, so such
      instances veto the batch kernel (:attr:`batch_eligible`) and run
      per-vertex (still on the combined-inbox fast path);
    * ``edge_weights`` — an array aligned with ``topology.out_indices``
      (one weight per directed edge in CSR order), which the batch kernel
      gathers directly.

    Not uniform-message (each neighbor gets dist + its own edge weight),
    so hub buffering does not apply — an intentional contrast with
    PageRank in the ablation benchmarks.  Declares the ``min`` combiner.
    """

    restrictive = True
    uniform_messages = False
    combiner = "min"

    def __init__(self, root: int, weights: dict | None = None,
                 edge_weights: np.ndarray | None = None):
        if weights and edge_weights is not None:
            raise ComputeError(
                "pass either a weights dict or an edge_weights array, "
                "not both"
            )
        self.root = root
        self.weights = weights or {}
        if edge_weights is not None:
            edge_weights = np.asarray(edge_weights, dtype=np.float64)
            if (edge_weights < 0).any():
                raise ComputeError(
                    "negative edge weights are not supported"
                )
        self.edge_weights = edge_weights

    @property
    def batch_eligible(self) -> bool:
        # A (src, dst) -> weight dict cannot be gathered vectorially.
        return not self.weights

    def init(self, ctx, vertex: int) -> None:
        ctx.set_value(vertex, 0.0 if vertex == self.root else INFINITY)

    def init_batch(self, ctx) -> None:
        ctx.values[:] = INFINITY
        ctx.values[self.root] = 0.0

    def compute(self, ctx, vertex: int, messages: list) -> None:
        best = min(messages) if messages else INFINITY
        improved = best < ctx.value
        if improved:
            ctx.value = best
        if ctx.superstep == 0 and vertex == self.root:
            improved = True
        if improved:
            if self.edge_weights is not None:
                start, _ = ctx.out_edge_range()
                for offset, dst in enumerate(ctx.out_neighbors()):
                    ctx.send(int(dst), ctx.value
                             + float(self.edge_weights[start + offset]))
            else:
                for dst in ctx.out_neighbors():
                    dst = int(dst)
                    weight = self.weights.get((vertex, dst), 1.0)
                    ctx.send(dst, ctx.value + weight)
        ctx.vote_to_halt()

    def compute_batch(self, ctx, vertices, combined, received) -> None:
        values = ctx.values
        improved = combined < values[vertices]
        updated = vertices[improved]
        values[updated] = combined[improved]
        if ctx.superstep == 0:
            improved = improved | (vertices == self.root)
        senders = vertices[improved]
        if len(senders):
            degrees = ctx.out_degrees(senders)
            _, positions = ctx.out_edges(senders)
            distances = np.repeat(values[senders], degrees)
            if self.edge_weights is not None:
                messages = distances + self.edge_weights[positions]
            else:
                messages = distances + 1.0
            ctx.send_along_edges(senders, messages)
        ctx.halt(vertices)


@dataclass
class SsspRun:
    distances: np.ndarray
    iteration_times: list[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(self.iteration_times)

    @property
    def reached(self) -> int:
        return int(np.isfinite(self.distances).sum())


def sssp(topology, root: int, edge_weights: np.ndarray | None = None,
         network: SimNetwork | None = None,
         params: ComputeParams | None = None,
         traffic: TrafficModel | None = None) -> SsspRun:
    """Vectorised frontier Bellman-Ford.

    ``edge_weights`` aligns with ``topology.out_indices`` (one weight per
    directed edge); ``None`` means unit weights.  Negative weights are
    rejected — the frontier schedule assumes monotone relaxation.
    """
    n = topology.n
    if not 0 <= root < n:
        raise ComputeError(f"root {root} out of range [0, {n})")
    network = network or SimNetwork()
    params = params or ComputeParams()
    traffic = traffic or TrafficModel(topology)
    edge_src = traffic.edge_src
    edge_dst = topology.out_indices
    if edge_weights is None:
        edge_weights = np.ones(len(edge_dst))
    else:
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if len(edge_weights) != len(edge_dst):
            raise ComputeError("edge_weights must align with out_indices")
        if (edge_weights < 0).any():
            raise ComputeError("negative edge weights are not supported")

    distances = np.full(n, INFINITY)
    distances[root] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[root] = True
    run = SsspRun(distances=distances)

    while frontier.any():
        pair_counts = traffic.frontier_traffic(frontier)
        active = traffic.per_machine_vertices(frontier)
        edges = traffic.per_machine_edges(frontier)

        relax = frontier[edge_src]
        candidates = distances[edge_src[relax]] + edge_weights[relax]
        new_distances = distances.copy()
        np.minimum.at(new_distances, edge_dst[relax], candidates)
        frontier = new_distances < distances
        distances = new_distances

        elapsed = traffic.charge_superstep(
            network, params, active, edges, pair_counts
        )
        run.iteration_times.append(elapsed)
    run.distances = distances
    return run
