"""Single-source shortest paths — the paper's second canonical
restrictive workload ("PageRank and shortest path", Section 5.3).

:class:`SsspProgram` is the classic Pregel SSSP; :func:`sssp` is a
vectorised frontier (Bellman-Ford) runner over optionally weighted edges.
With unit weights it degenerates to BFS, which the tests exploit for
cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel

INFINITY = float("inf")


class SsspProgram(VertexProgram):
    """Vertex-centric SSSP with per-edge weight lookup.

    ``weights`` maps (src, dst) dense pairs to edge weight; missing pairs
    default to 1.  Not uniform-message (each neighbor gets dist + its own
    edge weight), so hub buffering does not apply — an intentional
    contrast with PageRank in the ablation benchmarks.
    """

    restrictive = True
    uniform_messages = False

    def __init__(self, root: int, weights: dict | None = None):
        self.root = root
        self.weights = weights or {}

    def init(self, ctx, vertex: int) -> None:
        ctx.set_value(vertex, 0.0 if vertex == self.root else INFINITY)

    def compute(self, ctx, vertex: int, messages: list) -> None:
        best = min(messages) if messages else INFINITY
        improved = best < ctx.value
        if improved:
            ctx.value = best
        if ctx.superstep == 0 and vertex == self.root:
            improved = True
        if improved:
            for dst in ctx.out_neighbors():
                dst = int(dst)
                weight = self.weights.get((vertex, dst), 1.0)
                ctx.send(dst, ctx.value + weight)
        ctx.vote_to_halt()


@dataclass
class SsspRun:
    distances: np.ndarray
    iteration_times: list[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(self.iteration_times)

    @property
    def reached(self) -> int:
        return int(np.isfinite(self.distances).sum())


def sssp(topology, root: int, edge_weights: np.ndarray | None = None,
         network: SimNetwork | None = None,
         params: ComputeParams | None = None,
         traffic: TrafficModel | None = None) -> SsspRun:
    """Vectorised frontier Bellman-Ford.

    ``edge_weights`` aligns with ``topology.out_indices`` (one weight per
    directed edge); ``None`` means unit weights.  Negative weights are
    rejected — the frontier schedule assumes monotone relaxation.
    """
    n = topology.n
    if not 0 <= root < n:
        raise ComputeError(f"root {root} out of range [0, {n})")
    network = network or SimNetwork()
    params = params or ComputeParams()
    traffic = traffic or TrafficModel(topology)
    edge_src = traffic.edge_src
    edge_dst = topology.out_indices
    if edge_weights is None:
        edge_weights = np.ones(len(edge_dst))
    else:
        edge_weights = np.asarray(edge_weights, dtype=np.float64)
        if len(edge_weights) != len(edge_dst):
            raise ComputeError("edge_weights must align with out_indices")
        if (edge_weights < 0).any():
            raise ComputeError("negative edge weights are not supported")

    distances = np.full(n, INFINITY)
    distances[root] = 0.0
    frontier = np.zeros(n, dtype=bool)
    frontier[root] = True
    run = SsspRun(distances=distances)

    while frontier.any():
        pair_counts = traffic.frontier_traffic(frontier)
        active = traffic.per_machine_vertices(frontier)
        edges = traffic.per_machine_edges(frontier)

        relax = frontier[edge_src]
        candidates = distances[edge_src[relax]] + edge_weights[relax]
        new_distances = distances.copy()
        np.minimum.at(new_distances, edge_dst[relax], candidates)
        frontier = new_distances < distances
        distances = new_distances

        elapsed = traffic.charge_superstep(
            network, params, active, edges, pair_counts
        )
        run.iteration_times.append(elapsed)
    run.distances = distances
    return run
