"""Triangle counting — a standard restrictive vertex-centric workload.

Along with PageRank and shortest paths, triangle counting is one of the
well-known algorithms expressible in the restrictive model (each vertex
talks only to its neighbors): every vertex sends its neighbor list to
its higher-id neighbors, which intersect it with their own.  The
vectorised runner uses the standard ordered-adjacency merge over the CSR
snapshot with the same traffic accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel


class TriangleProgram(VertexProgram):
    """Vertex-centric triangle counting over an undirected topology.

    Superstep 0: every vertex sends its higher-id neighbor set to each
    higher-id neighbor.  Superstep 1: each vertex intersects the
    received sets with its own adjacency and accumulates the global
    count in the ``triangles`` aggregator (each triangle is counted
    exactly once, at its middle vertex).
    """

    restrictive = True
    uniform_messages = True  # the same neighbor set goes to everyone

    def compute(self, ctx, vertex: int, messages: list) -> None:
        neighbors = [int(v) for v in ctx.out_neighbors()]
        higher = sorted(v for v in set(neighbors) if v > vertex)
        if ctx.superstep == 0:
            ctx.set_value(vertex, 0)
            if higher:
                for target in higher:
                    ctx.send(target, (vertex, tuple(higher)))
        else:
            mine = set(higher)
            found = 0
            for sender, candidates in messages:
                for candidate in candidates:
                    if candidate > vertex and candidate in mine:
                        found += 1
            if found:
                ctx.set_value(vertex, found)
                ctx.aggregate("triangles", float(found))
        ctx.vote_to_halt()

    def after_superstep(self, ctx) -> None:
        pass


@dataclass
class TriangleRun:
    count: int
    per_vertex: np.ndarray = field(default=None)
    elapsed: float = 0.0


def count_triangles(topology, network: SimNetwork | None = None,
                    params: ComputeParams | None = None) -> TriangleRun:
    """Vectorised triangle count over a symmetric (undirected) CSR.

    Classic merge-intersection on sorted higher-id adjacency; traffic is
    charged as one superstep of neighbor-set exchange along the edges to
    higher-id endpoints.
    """
    network = network or SimNetwork()
    params = params or ComputeParams()
    n = topology.n
    # Sorted, deduplicated higher-id adjacency per vertex.
    higher: list[np.ndarray] = []
    for vertex in range(n):
        neighbors = np.unique(topology.out_neighbors(vertex))
        higher.append(neighbors[neighbors > vertex])

    per_vertex = np.zeros(n, dtype=np.int64)
    total = 0
    for u in range(n):
        adjacency_u = higher[u]
        set_u = set(adjacency_u.tolist())
        for v in adjacency_u:
            common = set_u.intersection(higher[int(v)].tolist())
            if common:
                per_vertex[int(v)] += len(common)
                total += len(common)

    traffic = TrafficModel(topology, hub_buffering=True)
    pair_counts = traffic.full_broadcast_traffic()
    active = traffic.per_machine_vertices()
    edges = traffic.per_machine_edges()
    elapsed = traffic.charge_superstep(
        network, params, active, edges, pair_counts
    )
    return TriangleRun(count=total, per_vertex=per_vertex, elapsed=elapsed)
