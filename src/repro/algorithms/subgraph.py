"""Subgraph matching without structure indexes (Section 5.2).

The paper argues that index-based subgraph matching (e.g. R-Join over
2-hop labels) cannot reach web scale — index construction is super-linear
— and that Trinity's fast random access plus parallelism make *online
exploration* viable instead, citing the STwig approach of Sun et al.
(VLDB'12) which this module follows:

1. the labeled query graph is decomposed into **STwigs** (star twigs: a
   root plus its leaves);
2. STwigs are matched one at a time against the data graph — root
   candidates come from a per-machine label index or from the bindings of
   already-matched rows, leaves from live adjacency exploration;
3. partial embeddings are joined across STwigs (shipping rows between the
   machines that own the candidate roots), and query edges not covered by
   any STwig are verified at the end.

Only a label index is required — linear space, trivially maintainable —
which is the paper's point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence
from ..net.simnet import ParallelRound, SimNetwork


# ---------------------------------------------------------------------------
# Query representation and generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """A small labeled query graph (nodes are 0..q-1)."""

    labels: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]

    @property
    def size(self) -> int:
        return len(self.labels)

    def adjacency(self) -> dict[int, set[int]]:
        adj: dict[int, set[int]] = {v: set() for v in range(self.size)}
        for u, v in self.edges:
            adj[u].add(v)
            adj[v].add(u)
        return adj

    def validate(self) -> None:
        if not self.labels:
            raise QueryError("empty query")
        for u, v in self.edges:
            if not (0 <= u < self.size and 0 <= v < self.size):
                raise QueryError(f"edge ({u}, {v}) out of range")
            if u == v:
                raise QueryError("self-loops are not allowed in queries")


def assign_labels(n: int, num_labels: int = 20, seed: int = 0) -> np.ndarray:
    """Uniform node labels for the data graph (Sun et al.'s setting)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, num_labels, size=n, dtype=np.int64)


def _extract_query(topology, labels, picked: list[int],
                   rng: random.Random) -> Query:
    """Build the induced labeled query over ``picked`` data nodes."""
    index = {v: i for i, v in enumerate(picked)}
    picked_set = set(picked)
    edges: set[tuple[int, int]] = set()
    for v in picked:
        for u in topology.out_neighbors(v):
            u = int(u)
            if u in picked_set and u != v:
                a, b = index[v], index[u]
                edges.add((min(a, b), max(a, b)))
    query = Query(
        labels=tuple(int(labels[v]) for v in picked),
        edges=tuple(sorted(edges)),
    )
    query.validate()
    return query


def generate_query_dfs(topology, labels, size: int = 10,
                       seed: int = 0) -> Query:
    """Extract a query by DFS walk from a random node (Sun et al.'s DFS
    query generator): path-shaped, guaranteed at least one embedding."""
    rng = random.Random(seed)
    for _ in range(64):
        start = rng.randrange(topology.n)
        stack = [start]
        picked: list[int] = []
        seen = {start}
        while stack and len(picked) < size:
            v = stack.pop()
            picked.append(v)
            neighbors = [int(u) for u in topology.out_neighbors(v)
                         if int(u) not in seen]
            rng.shuffle(neighbors)
            for u in neighbors:
                seen.add(u)
                stack.append(u)
        if len(picked) == size:
            return _extract_query(topology, labels, picked, rng)
    raise QueryError(f"could not find a connected {size}-node region")


def generate_query_random(topology, labels, size: int = 10,
                          seed: int = 0) -> Query:
    """Extract a query by random connected expansion (the RANDOM
    generator): bushier than DFS queries."""
    rng = random.Random(seed)
    for _ in range(64):
        start = rng.randrange(topology.n)
        picked = [start]
        picked_set = {start}
        stalled = 0
        while len(picked) < size and stalled < 200:
            anchor = picked[rng.randrange(len(picked))]
            neighbors = topology.out_neighbors(anchor)
            if not len(neighbors):
                stalled += 1
                continue
            candidate = int(neighbors[rng.randrange(len(neighbors))])
            if candidate in picked_set:
                stalled += 1
                continue
            picked.append(candidate)
            picked_set.add(candidate)
            stalled = 0
        if len(picked) == size:
            return _extract_query(topology, labels, picked, rng)
    raise QueryError(f"could not find a connected {size}-node region")


# ---------------------------------------------------------------------------
# STwig decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class STwig:
    """One star twig of the query: a root and its leaf set."""

    root: int
    leaves: tuple[int, ...]


def decompose_stwigs(query: Query,
                     label_frequency: dict[int, int] | None = None) -> list[STwig]:
    """Greedy STwig decomposition (Sun et al., Section 4.1 heuristic):
    repeatedly pick the node with the highest degree-to-label-frequency
    score among uncovered edges, take it as a root with all its
    still-uncovered neighbors as leaves."""
    query.validate()
    adj = query.adjacency()
    uncovered = {frozenset(e) for e in query.edges}
    covered_nodes: set[int] = set()
    stwigs: list[STwig] = []

    def score(v: int) -> tuple[int, float, int]:
        degree = sum(1 for u in adj[v] if frozenset((v, u)) in uncovered)
        if degree == 0:
            return (-1, 0.0, -v)  # ineligible as a root
        freq = (label_frequency or {}).get(query.labels[v], 1) or 1
        # Prefer roots already bound by earlier STwigs so each join stage
        # extends connected partial embeddings instead of doing a
        # cartesian restart; among those, prefer selective roots.
        connected = 1 if (v in covered_nodes or not covered_nodes) else 0
        return (connected, degree / freq, -v)

    while uncovered:
        root = max(range(query.size), key=score)
        leaves = tuple(sorted(
            u for u in adj[root] if frozenset((root, u)) in uncovered
        ))
        assert leaves, "uncovered edges imply an eligible root"
        for u in leaves:
            uncovered.discard(frozenset((root, u)))
        covered_nodes.add(root)
        covered_nodes.update(leaves)
        stwigs.append(STwig(root, leaves))
    isolated = set(range(query.size)) - covered_nodes
    for v in sorted(isolated):
        stwigs.append(STwig(v, ()))
    return stwigs


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


@dataclass
class SubgraphMatchResult:
    """Embeddings plus distributed-execution accounting."""

    query: Query
    embeddings: list[tuple[int, ...]] = field(default_factory=list)
    round_times: list[float] = field(default_factory=list)
    messages: int = 0
    candidates_examined: int = 0
    truncated: bool = False

    @property
    def elapsed(self) -> float:
        return sum(self.round_times)

    @property
    def match_count(self) -> int:
        return len(self.embeddings)


class LabelIndex:
    """Per-machine label → node index (the only index Trinity needs)."""

    def __init__(self, topology, labels: np.ndarray):
        if len(labels) != topology.n:
            raise QueryError("labels must align with the topology")
        self.labels = np.asarray(labels)
        self.by_label: dict[int, np.ndarray] = {}
        order = np.argsort(self.labels, kind="stable")
        sorted_labels = self.labels[order]
        boundaries = np.nonzero(np.diff(sorted_labels))[0] + 1
        chunks = np.split(order, boundaries)
        for chunk in chunks:
            if len(chunk):
                self.by_label[int(self.labels[chunk[0]])] = chunk

    def candidates(self, label: int) -> np.ndarray:
        return self.by_label.get(label, np.empty(0, dtype=np.int64))

    def frequency(self) -> dict[int, int]:
        return {label: len(nodes) for label, nodes in self.by_label.items()}


def matching_order(query: Query, stwigs: list[STwig]) -> list[int]:
    """Flatten the STwig decomposition into a backtracking order.

    Roots come before their leaves; later STwigs (whose roots are bound
    by earlier ones) extend connected partial embeddings, which is what
    keeps candidate sets adjacency-bounded.
    """
    order: list[int] = []
    seen: set[int] = set()
    for stwig in stwigs:
        if stwig.root not in seen:
            seen.add(stwig.root)
            order.append(stwig.root)
        for leaf in stwig.leaves:
            if leaf not in seen:
                seen.add(leaf)
                order.append(leaf)
    return order


def match_subgraph(topology, labels, query: Query,
                   network: SimNetwork | None = None,
                   params: ComputeParams | None = None,
                   index: LabelIndex | None = None,
                   max_embeddings: int = 1024,
                   max_expansions: int = 2_000_000,
                   batch: bool = True,
                   cross_check: bool = False) -> SubgraphMatchResult:
    """Find embeddings of ``query`` in the labeled data graph.

    Embeddings are injective label-preserving mappings with every query
    edge present (subgraph isomorphism).  The search backtracks
    depth-first along the STwig order — candidates for each query node
    come from the adjacency list of an already-bound neighbor (one cell
    access, like Trinity's live exploration), or from the label index for
    the first root.

    With ``batch`` (the default) the per-level candidate prefilter —
    label check plus adjacency to every bound anchor — runs as one
    vectorized mask over the whole candidate array instead of a Python
    test per candidate.  The filter is loop-invariant at each level
    (anchor bindings and the injectivity set only change at *other*
    depths), so the surviving candidates, their order, and all accounting
    are identical to the scalar path; ``cross_check=True`` replays the
    scalar filter at every level and raises
    :class:`~repro.memcloud.cloud.BulkPathDivergence` on any difference.

    Stops once ``max_embeddings`` are found or ``max_expansions``
    candidates were examined (``truncated`` set in either case); online
    queries want the first page of answers, not an exhaustive census.
    """
    network = network or SimNetwork()
    params = params or ComputeParams()
    index = index or LabelIndex(topology, labels)
    labels = index.labels
    result = SubgraphMatchResult(query=query)
    stwigs = decompose_stwigs(query, index.frequency())
    order = matching_order(query, stwigs)
    query_adj = query.adjacency()
    # Earlier-in-order query neighbors of each node: the anchors whose
    # bindings constrain its candidates.
    position = {v: i for i, v in enumerate(order)}
    anchors = [
        sorted(u for u in query_adj[v] if position[u] < position[v])
        for v in order
    ]

    neighbor_arrays: dict[int, np.ndarray] = {}
    neighbor_sets: dict[int, set] = {}

    def neighbors_of(v: int) -> np.ndarray:
        cached = neighbor_arrays.get(v)
        if cached is None:
            cached = topology.out_neighbors(v)
            neighbor_arrays[v] = cached
        return cached

    def neighbor_set_of(v: int) -> set:
        cached = neighbor_sets.get(v)
        if cached is None:
            cached = set(int(u) for u in neighbors_of(v))
            neighbor_sets[v] = cached
        return cached

    compute_total = [0.0]
    remote_traffic = [0, 0]  # messages, bytes (crossing machines)
    mapping: dict[int, int] = {}
    used: set[int] = set()

    def _prefilter(candidates, wanted_label: int,
                   anchor_nodes) -> np.ndarray:
        """Vectorized label + injectivity + anchor-adjacency mask."""
        cand = np.asarray(candidates, dtype=np.int64)
        mask = labels[cand] == wanted_label
        if used:
            mask &= ~np.isin(cand, np.fromiter(used, dtype=np.int64,
                                               count=len(used)))
        for a in anchor_nodes:
            mask &= np.isin(cand, neighbors_of(mapping[a]))
        survivors = cand[mask]
        if cross_check:
            shadow = [
                int(c) for c in candidates
                if int(labels[int(c)]) == wanted_label
                and int(c) not in used
                and all(int(c) in neighbor_set_of(mapping[a])
                        for a in anchor_nodes)
            ]
            if survivors.tolist() != shadow:
                raise BulkPathDivergence(
                    f"subgraph batch prefilter diverges from scalar: "
                    f"{survivors.tolist()!r} != {shadow!r}"
                )
        return survivors

    def backtrack(depth: int) -> bool:
        """Returns False when a budget stops the search."""
        if len(result.embeddings) >= max_embeddings:
            result.truncated = True
            return False
        if depth == len(order):
            result.embeddings.append(
                tuple(mapping[v] for v in range(query.size))
            )
            return True
        qv = order[depth]
        anchor_nodes = anchors[depth]
        if anchor_nodes:
            # Candidates: adjacency of the smallest-degree bound anchor.
            pivot = min(
                anchor_nodes, key=lambda a: len(neighbors_of(mapping[a]))
            )
            candidates = neighbors_of(mapping[pivot])
            pivot_machine = int(topology.machine[mapping[pivot]])
        else:
            candidates = index.candidates(query.labels[qv])
            pivot_machine = None
        wanted_label = query.labels[qv]
        row_bytes = 8 * (depth + 1)
        if batch:
            candidates = _prefilter(candidates, wanted_label,
                                    anchor_nodes)
        for candidate in candidates:
            candidate = int(candidate)
            if not batch:
                if labels[candidate] != wanted_label or candidate in used:
                    continue
                # Every bound anchor must be adjacent to the candidate.
                if not all(candidate in neighbor_set_of(mapping[a])
                           for a in anchor_nodes):
                    continue
            result.candidates_examined += 1
            machine = int(topology.machine[candidate])
            compute_total[0] += (
                params.cell_access_cost
                + len(neighbors_of(candidate)) * params.edge_scan_cost
            )
            if pivot_machine is not None and machine != pivot_machine:
                remote_traffic[0] += 1
                remote_traffic[1] += row_bytes
                result.messages += 1
            if result.candidates_examined >= max_expansions:
                result.truncated = True
                return False
            mapping[qv] = candidate
            used.add(candidate)
            alive = backtrack(depth + 1)
            used.discard(candidate)
            del mapping[qv]
            if not alive:
                return False
        return True

    backtrack(0)
    round_ = ParallelRound(network)
    # Exploration subtrees are independent tasks; Trinity spreads them
    # over the cluster with asynchronous one-sided requests, so both the
    # search compute and the cross-machine row traffic divide across all
    # machines (remote cell reads were counted as they happened).
    machines = topology.machine_count
    pairs = max(1, machines * (machines - 1))
    for machine in range(machines):
        round_.add_compute(machine, compute_total[0] / machines)
    if remote_traffic[0]:
        for src in range(machines):
            for dst in range(machines):
                if src != dst:
                    round_.add_message(
                        src, dst,
                        remote_traffic[1] // pairs,
                        max(1, remote_traffic[0] // pairs),
                    )
    result.round_times.append(
        round_.finish(parallelism=params.threads_per_machine)
    )
    result.embeddings.sort()
    return result
