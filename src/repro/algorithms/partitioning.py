"""Multi-level graph partitioning (Section 5.3).

"Trinity can partition billion-node graphs within a few hours using a
multi-level partitioning algorithm.  The quality of the partitioning is
comparable to that of the best partitioning algorithm (e.g., METIS).  To
the best of our knowledge, billion-node graph partitioning is an unsolved
problem on general-purpose graph platforms."

The paper cites its companion technical report; this module implements
the standard multi-level scheme the report builds on:

1. **coarsen** — repeated heavy-edge matching collapses matched pairs
   until the graph is small;
2. **initial partition** — greedy region growing on the coarsest graph;
3. **uncoarsen + refine** — project the partition back level by level,
   applying boundary Kernighan-Lin-style moves at each level.

The paper's claim reproduced in the ablation bench: the multi-level cut
is far below the random/hash partition cut the memory cloud uses by
default.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ComputeError


@dataclass
class PartitioningResult:
    """A k-way partition of a graph plus quality metrics."""

    assignment: np.ndarray           # node -> part id
    parts: int
    cut: int
    balance: float                   # max part size / ideal size
    levels: int = 0
    history: list[tuple[int, int]] = field(default_factory=list)


def edge_cut(indptr: np.ndarray, indices: np.ndarray,
             assignment: np.ndarray) -> int:
    """Number of (directed) edges whose endpoints are in different parts."""
    n = len(indptr) - 1
    src = np.repeat(np.arange(n), np.diff(indptr))
    return int(np.sum(assignment[src] != assignment[indices]))


def hash_partition(n: int, parts: int, seed: int = 0) -> np.ndarray:
    """The memory cloud's default placement: uniform random assignment."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, parts, size=n, dtype=np.int64)


def multilevel_partition(indptr: np.ndarray, indices: np.ndarray,
                         parts: int, coarsest: int = 200,
                         refine_passes: int = 4,
                         seed: int = 0) -> PartitioningResult:
    """k-way multi-level partitioning of an undirected CSR graph.

    The adjacency should be symmetric (each undirected edge present in
    both directions); the cut reported counts directed entries, i.e.
    2x the undirected cut.
    """
    if parts < 2:
        raise ComputeError("parts must be >= 2")
    n = len(indptr) - 1
    if n < parts:
        raise ComputeError(f"cannot split {n} nodes into {parts} parts")

    # ---- coarsening phase ----
    levels = []  # (indptr, indices, weights, node_weights, mapping_to_finer)
    cur_indptr, cur_indices = indptr, indices
    cur_eweights = np.ones(len(indices), dtype=np.int64)
    cur_nweights = np.ones(n, dtype=np.int64)
    rng = np.random.default_rng(seed)
    while len(cur_indptr) - 1 > max(coarsest, parts * 8):
        matching = _heavy_edge_matching(
            cur_indptr, cur_indices, cur_eweights, rng
        )
        coarse = _contract(
            cur_indptr, cur_indices, cur_eweights, cur_nweights, matching
        )
        if coarse is None:
            break  # matching stalled (e.g. star graph); stop coarsening
        levels.append((cur_indptr, cur_indices, cur_eweights,
                       cur_nweights, matching))
        cur_indptr, cur_indices, cur_eweights, cur_nweights = coarse

    # ---- initial partition on the coarsest graph ----
    assignment = _region_growing(
        cur_indptr, cur_indices, cur_nweights, parts, rng
    )
    assignment = _rebalance(
        cur_indptr, cur_indices, cur_eweights, cur_nweights,
        assignment, parts,
    )
    assignment = _refine(
        cur_indptr, cur_indices, cur_eweights, cur_nweights,
        assignment, parts, refine_passes,
    )
    history = [(len(cur_indptr) - 1,
                edge_cut(cur_indptr, cur_indices, assignment))]

    # ---- uncoarsening + refinement ----
    for fine_indptr, fine_indices, fine_eweights, fine_nweights, matching \
            in reversed(levels):
        assignment = assignment[matching]
        assignment = _rebalance(
            fine_indptr, fine_indices, fine_eweights, fine_nweights,
            assignment, parts,
        )
        assignment = _refine(
            fine_indptr, fine_indices, fine_eweights, fine_nweights,
            assignment, parts, refine_passes,
        )
        history.append((len(fine_indptr) - 1,
                        edge_cut(fine_indptr, fine_indices, assignment)))

    sizes = np.bincount(assignment, minlength=parts)
    ideal = n / parts
    return PartitioningResult(
        assignment=assignment,
        parts=parts,
        cut=edge_cut(indptr, indices, assignment),
        balance=float(sizes.max() / ideal),
        levels=len(levels),
        history=history,
    )


def _heavy_edge_matching(indptr, indices, eweights, rng) -> np.ndarray:
    """Match each node with its heaviest unmatched neighbor.

    Returns ``match`` where matched pairs share a coarse id; the array
    maps fine node -> coarse node id (contiguous).
    """
    n = len(indptr) - 1
    order = rng.permutation(n)
    mate = np.full(n, -1, dtype=np.int64)
    for v in order:
        if mate[v] >= 0:
            continue
        best = -1
        best_weight = -1
        for offset in range(indptr[v], indptr[v + 1]):
            u = int(indices[offset])
            if u == v or mate[u] >= 0:
                continue
            if eweights[offset] > best_weight:
                best_weight = int(eweights[offset])
                best = u
        if best >= 0:
            mate[v] = best
            mate[best] = v
        else:
            mate[v] = v  # unmatched: survives alone
    coarse_id = np.full(n, -1, dtype=np.int64)
    next_id = 0
    for v in range(n):
        if coarse_id[v] >= 0:
            continue
        coarse_id[v] = next_id
        coarse_id[mate[v]] = next_id
        next_id += 1
    return coarse_id


def _contract(indptr, indices, eweights, nweights, coarse_id):
    """Build the coarse graph; None if contraction made no progress."""
    n = len(indptr) - 1
    coarse_n = int(coarse_id.max()) + 1
    if coarse_n >= n:
        return None
    edge_map: dict[tuple[int, int], int] = {}
    src = np.repeat(np.arange(n), np.diff(indptr))
    for s, d, w in zip(coarse_id[src], coarse_id[indices], eweights):
        s, d = int(s), int(d)
        if s == d:
            continue
        key = (s, d)
        edge_map[key] = edge_map.get(key, 0) + int(w)
    coarse_indptr = np.zeros(coarse_n + 1, dtype=np.int64)
    pairs = sorted(edge_map)
    for s, _ in pairs:
        coarse_indptr[s + 1] += 1
    coarse_indptr = np.cumsum(coarse_indptr)
    coarse_indices = np.array([d for _, d in pairs], dtype=np.int64)
    coarse_eweights = np.array([edge_map[p] for p in pairs], dtype=np.int64)
    coarse_nweights = np.bincount(
        coarse_id, weights=nweights, minlength=coarse_n
    ).astype(np.int64)
    return coarse_indptr, coarse_indices, coarse_eweights, coarse_nweights


def _region_growing(indptr, indices, nweights, parts, rng) -> np.ndarray:
    """Greedy BFS region growing for the initial partition."""
    n = len(indptr) - 1
    assignment = np.full(n, -1, dtype=np.int64)
    target = nweights.sum() / parts
    unassigned = set(range(n))
    for part in range(parts - 1):
        if not unassigned:
            break
        seed_node = int(rng.choice(sorted(unassigned)))
        frontier = [seed_node]
        weight = 0
        while frontier and weight < target:
            v = frontier.pop()
            if assignment[v] >= 0:
                continue
            assignment[v] = part
            unassigned.discard(v)
            weight += int(nweights[v])
            for u in indices[indptr[v]:indptr[v + 1]]:
                u = int(u)
                if assignment[u] < 0:
                    frontier.append(u)
    for v in unassigned:
        assignment[v] = parts - 1
    return assignment


def _rebalance(indptr, indices, eweights, nweights, assignment,
               parts, tolerance: float = 1.12) -> np.ndarray:
    """Shed weight from overweight parts onto the lightest parts.

    Picks, per move, the overweight-part node with the smallest cut
    penalty toward the current lightest part; runs until every part is
    within ``tolerance`` of ideal (or no move is possible).
    """
    assignment = assignment.copy()
    n = len(indptr) - 1
    sizes = np.bincount(assignment, weights=nweights,
                        minlength=parts).astype(np.float64)
    ideal = nweights.sum() / parts
    limit = ideal * tolerance

    def link_weight(v: int, part: int) -> int:
        total = 0
        for offset in range(indptr[v], indptr[v + 1]):
            if assignment[indices[offset]] == part:
                total += int(eweights[offset])
        return total

    for _ in range(4 * n):  # hard bound on total moves
        heavy = int(np.argmax(sizes))
        if sizes[heavy] <= limit:
            break
        light = int(np.argmin(sizes))
        members = np.nonzero(assignment == heavy)[0]
        if not len(members):
            break
        # Cheapest eviction: maximize (links to light - links to heavy).
        best_node = None
        best_score = None
        for v in members[:512]:  # cap the scan; members is shuffled-ish
            score = link_weight(int(v), light) - link_weight(int(v), heavy)
            if best_score is None or score > best_score:
                best_score = score
                best_node = int(v)
        if best_node is None:
            break
        assignment[best_node] = light
        sizes[heavy] -= float(nweights[best_node])
        sizes[light] += float(nweights[best_node])
    return assignment


def _refine(indptr, indices, eweights, nweights, assignment, parts,
            passes) -> np.ndarray:
    """Boundary KL/FM-style refinement: greedily move nodes whose gain is
    positive, keeping parts within a 15% imbalance tolerance."""
    assignment = assignment.copy()
    n = len(indptr) - 1
    sizes = np.bincount(assignment, weights=nweights,
                        minlength=parts).astype(np.int64)
    max_size = int(nweights.sum() / parts * 1.15) + 1
    for _ in range(passes):
        moved = 0
        for v in range(n):
            home = int(assignment[v])
            # Connectivity of v to each part.
            link = {}
            for offset in range(indptr[v], indptr[v + 1]):
                u = int(indices[offset])
                link[int(assignment[u])] = (
                    link.get(int(assignment[u]), 0) + int(eweights[offset])
                )
            internal = link.get(home, 0)
            best_part, best_gain = home, 0
            for part, weight in link.items():
                if part == home:
                    continue
                if sizes[part] + nweights[v] > max_size:
                    continue
                gain = weight - internal
                if gain > best_gain:
                    best_gain = gain
                    best_part = part
            if best_part != home:
                assignment[v] = best_part
                sizes[home] -= int(nweights[v])
                sizes[best_part] += int(nweights[v])
                moved += 1
        if not moved:
            break
    return assignment
