"""Weakly connected components via HashMin label propagation.

A standard restrictive vertex-centric workload: every vertex repeatedly
adopts the minimum component label among itself and its (in+out)
neighbors.  Convergence takes O(component diameter) supersteps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel


class WccProgram(VertexProgram):
    """Vertex-centric HashMin components (value = min label seen).

    Declares the ``min`` combiner; :meth:`compute_batch` is the
    vectorized kernel with identical semantics.
    """

    restrictive = True
    uniform_messages = True
    combiner = "min"
    value_dtype = np.int64

    def init(self, ctx, vertex: int) -> None:
        ctx.set_value(vertex, vertex)

    def init_batch(self, ctx) -> None:
        ctx.values[:] = np.arange(ctx.num_vertices, dtype=np.int64)

    def compute(self, ctx, vertex: int, messages: list) -> None:
        best = min(messages) if messages else ctx.value
        if ctx.superstep == 0 or best < ctx.value:
            if best < ctx.value:
                ctx.value = best
            ctx.send_to_neighbors(ctx.value)
        ctx.vote_to_halt()

    def compute_batch(self, ctx, vertices, combined, received) -> None:
        values = ctx.values
        better = received & (combined < values[vertices])
        improved = vertices[better]
        values[improved] = combined[better]
        senders = vertices if ctx.superstep == 0 else improved
        if len(senders):
            ctx.send_to_neighbors(senders, values[senders])
        ctx.halt(vertices)


@dataclass
class WccRun:
    labels: np.ndarray
    iteration_times: list[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(self.iteration_times)

    @property
    def component_count(self) -> int:
        return int(len(np.unique(self.labels)))


def wcc(topology, network: SimNetwork | None = None,
        params: ComputeParams | None = None,
        traffic: TrafficModel | None = None) -> WccRun:
    """Vectorised HashMin over the symmetrised edge set.

    Direction is ignored (weak connectivity), so each directed edge
    propagates labels both ways; traffic is charged per active frontier
    like the vertex engine would.
    """
    network = network or SimNetwork()
    params = params or ComputeParams()
    traffic = traffic or TrafficModel(topology)
    n = topology.n
    edge_src = traffic.edge_src
    edge_dst = topology.out_indices

    labels = np.arange(n, dtype=np.int64)
    changed = np.ones(n, dtype=bool)
    run = WccRun(labels=labels)
    while changed.any():
        pair_counts = traffic.frontier_traffic(changed)
        active = traffic.per_machine_vertices(changed)
        edges = traffic.per_machine_edges(changed)
        # Propagate both directions (weak connectivity).
        new_labels = labels.copy()
        np.minimum.at(new_labels, edge_dst, labels[edge_src])
        np.minimum.at(new_labels, edge_src, labels[edge_dst])
        changed = new_labels < labels
        labels = new_labels
        elapsed = traffic.charge_superstep(
            network, params, active, edges, pair_counts
        )
        run.iteration_times.append(elapsed)
    run.labels = labels
    return run
