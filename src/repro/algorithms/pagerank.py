"""PageRank: the paper's flagship offline analytics workload (Fig 12b).

Two implementations with identical semantics:

* :class:`PageRankProgram` — a restrictive, uniform-message vertex program
  for the BSP engine (reference semantics; used by tests and small runs).
* :func:`pagerank` — a vectorised runner for benchmark scales, charging
  each superstep through the shared :class:`~repro.algorithms._traffic.
  TrafficModel` so the simulated times match the engine's accounting.

Dangling vertices redistribute their rank mass uniformly, the standard
formulation (and what makes the rank vector a probability distribution,
which the property tests assert).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel


class PageRankProgram(VertexProgram):
    """Vertex-centric PageRank for :class:`~repro.compute.bsp.BspEngine`.

    Runs a fixed number of power iterations; dangling mass is collected
    through the ``dangling`` aggregator and folded in next superstep.

    Declares the ``sum`` combiner (a vertex only ever consumes
    ``sum(messages)``), so the engine runs it on the vectorized path;
    :meth:`compute_batch` is the numpy kernel with identical semantics,
    bit for bit (the equivalence tests and ``cross_check`` assert this).
    """

    restrictive = True
    uniform_messages = True
    combiner = "sum"

    def __init__(self, damping: float = 0.85, iterations: int = 10):
        if not 0.0 < damping < 1.0:
            raise ComputeError("damping must be in (0, 1)")
        self.damping = damping
        self.iterations = iterations

    def init(self, ctx, vertex: int) -> None:
        ctx.set_value(vertex, 1.0 / ctx.num_vertices)

    def init_batch(self, ctx) -> None:
        ctx.values[:] = 1.0 / ctx.num_vertices

    def compute(self, ctx, vertex: int, messages: list) -> None:
        n = ctx.num_vertices
        if ctx.superstep > 0:
            dangling = ctx.aggregated("dangling") / n
            ctx.value = ((1.0 - self.damping) / n
                         + self.damping * (sum(messages) + dangling))
        if ctx.superstep < self.iterations:
            degree = ctx.out_degree()
            if degree:
                ctx.send_to_neighbors(ctx.value / degree)
            else:
                ctx.aggregate("dangling", ctx.value)
        else:
            ctx.vote_to_halt()

    def compute_batch(self, ctx, vertices, combined, received) -> None:
        n = ctx.num_vertices
        values = ctx.values
        if ctx.superstep > 0:
            dangling = ctx.aggregated("dangling") / n
            values[vertices] = ((1.0 - self.damping) / n
                                + self.damping * (combined + dangling))
        if ctx.superstep < self.iterations:
            degrees = ctx.out_degrees(vertices)
            has_edges = degrees > 0
            senders = vertices[has_edges]
            if len(senders):
                ctx.send_to_neighbors(senders,
                                      values[senders] / degrees[has_edges])
            # Sequential fold in vertex order: the same left-to-right
            # float accumulation the per-vertex path produces.
            for value in values[vertices[~has_edges]].tolist():
                ctx.aggregate("dangling", value)
        else:
            ctx.halt(vertices)


@dataclass
class PageRankRun:
    """Result of a vectorised PageRank run."""

    ranks: np.ndarray
    iteration_times: list[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(self.iteration_times)

    @property
    def time_per_iteration(self) -> float:
        if not self.iteration_times:
            return 0.0
        return self.elapsed / len(self.iteration_times)


def pagerank(topology, damping: float = 0.85, iterations: int = 10,
             network: SimNetwork | None = None,
             params: ComputeParams | None = None,
             traffic: TrafficModel | None = None,
             hub_buffering: bool = True) -> PageRankRun:
    """Vectorised PageRank with per-superstep simulated-time accounting.

    Because PageRank's communication is a full broadcast every superstep,
    the traffic matrix is computed once and reused — exactly the
    "predictable iteration after iteration" property Section 5.3 exploits.
    """
    if iterations < 1:
        raise ComputeError("iterations must be >= 1")
    network = network or SimNetwork()
    params = params or ComputeParams()
    traffic = traffic or TrafficModel(topology, hub_buffering=hub_buffering)

    n = topology.n
    degrees = topology.out_degrees().astype(np.float64)
    dangling_mask = degrees == 0
    edge_src = traffic.edge_src
    edge_dst = topology.out_indices

    ranks = np.full(n, 1.0 / n)
    pair_counts = traffic.full_broadcast_traffic()
    active = traffic.per_machine_vertices()
    edges = traffic.per_machine_edges()

    run = PageRankRun(ranks=ranks)
    for _ in range(iterations):
        contribution = np.where(dangling_mask, 0.0, ranks / np.maximum(degrees, 1.0))
        incoming = np.bincount(
            edge_dst, weights=contribution[edge_src], minlength=n
        )
        dangling_mass = float(ranks[dangling_mask].sum())
        ranks = ((1.0 - damping) / n
                 + damping * (incoming + dangling_mass / n))
        elapsed = traffic.charge_superstep(
            network, params, active, edges, pair_counts
        )
        run.iteration_times.append(elapsed)
    run.ranks = ranks
    return run


def pagerank_async(topology, damping: float = 0.85,
                   tolerance: float = 1e-10,
                   network: SimNetwork | None = None,
                   params: ComputeParams | None = None,
                   engine=None, max_updates: int = 5_000_000):
    """Asynchronous delta-PageRank (the GraphChi-style model, Section 5.3).

    Instead of synchronous power iterations, each vertex accumulates a
    residual; updating a vertex folds its residual into its rank and
    pushes ``damping * residual / degree`` to each out-neighbor, waking
    neighbors whose residual crossed ``tolerance``.  Runs on the
    :class:`~repro.compute.async_engine.AsyncEngine` — no barriers, with
    Safra-certified termination — and converges to the same fixed point
    as the synchronous implementation (asserted in the tests).

    Returns ``(ranks, AsyncResult)``.
    """
    from ..compute.async_engine import AsyncEngine

    n = topology.n
    if engine is None:
        engine = AsyncEngine(topology, network=network,
                             compute_params=params)
    # Push-method invariant: x = ranks + (I - dM)^-1 residual, so ranks
    # start at zero and the whole teleport mass sits in the residual.
    base = (1.0 - damping) / n
    ranks = np.zeros(n)
    residual = np.full(n, base)
    degrees = topology.out_degrees()

    def update(values, vertex, topo):
        delta = residual[vertex]
        if delta <= tolerance:
            return ()
        residual[vertex] = 0.0
        ranks[vertex] += delta
        degree = degrees[vertex]
        if not degree:
            return ()
        share = damping * delta / degree
        wake = []
        for neighbor in topo.out_neighbors(vertex):
            neighbor = int(neighbor)
            before = residual[neighbor]
            residual[neighbor] = before + share
            if before <= tolerance < residual[neighbor]:
                wake.append(neighbor)
        return wake

    result = engine.run(update, [0.0] * n, range(n),
                        max_updates=max_updates)
    # Delta-PageRank computes the unnormalised fixed point
    # r = (1-d)/n + d A r; normalise to a distribution like the
    # synchronous runner reports.
    total = ranks.sum()
    return ranks / total, result
