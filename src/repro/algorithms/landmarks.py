"""Landmark-based distance oracle (Section 5.5, Figure 8b).

The distance oracle estimates d(u, v) as min over landmarks L of
d(u, L) + d(L, v) — an upper bound that is exact when some landmark lies
on a shortest u-v path.  The experiment compares three landmark-selection
strategies:

* **largest degree** — cheap, worst accuracy;
* **global betweenness** — best accuracy, but computing betweenness over
  the whole distributed graph is expensive;
* **local betweenness** — the paper's new paradigm (Section 5.5): each
  machine computes betweenness *on its local partition only* (a random
  sample of the graph, since partitioning is hash-random) and nominates
  its top nodes.  Accuracy lands close to global at a fraction of the
  cost, "overcom[ing] the network communication bottleneck".

Betweenness is estimated with Brandes' algorithm over sampled sources,
implemented here directly (no networkx dependency in library code).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence


@dataclass
class SelectionCost:
    """Work accounting for one landmark-selection run.

    ``traversal_units`` counts node+edge touches by the Brandes passes;
    ``elapsed`` prices them with the standard compute model, taking the
    max over machines for the parallel local strategy (each machine
    scores its own sample concurrently) and the whole sum for the global
    strategy (one logical computation over the full graph) — the cost
    asymmetry behind Section 5.5's "significantly more costly".
    """

    strategy: str
    traversal_units: int = 0
    per_machine_units: dict[int, int] = field(default_factory=dict)

    def charge(self, machine: int, units: int) -> None:
        self.traversal_units += units
        self.per_machine_units[machine] = (
            self.per_machine_units.get(machine, 0) + units
        )

    def elapsed(self, params: ComputeParams | None = None) -> float:
        params = params or ComputeParams()
        unit_cost = params.cell_access_cost + params.edge_scan_cost
        if self.strategy == "local-betweenness" and self.per_machine_units:
            units = max(self.per_machine_units.values())
        else:
            units = self.traversal_units
        return units * unit_cost / params.threads_per_machine


def brandes_betweenness(indptr: np.ndarray, indices: np.ndarray,
                        nodes: np.ndarray | None = None,
                        samples: int = 64, seed: int = 0,
                        work_out: list | None = None) -> np.ndarray:
    """Approximate betweenness centrality via sampled Brandes BFS.

    ``indptr``/``indices`` describe a CSR adjacency over n nodes; sources
    are sampled from ``nodes`` (default: all).  Returns a length-n score
    vector (unnormalised; only the ranking matters here).  When
    ``work_out`` is given, the total node+edge touches are appended to it
    (the traversal-work unit the selection-cost model prices).
    """
    n = len(indptr) - 1
    scores = np.zeros(n)
    rng = np.random.default_rng(seed)
    pool = np.arange(n) if nodes is None else np.asarray(nodes)
    if not len(pool):
        return scores
    sources = rng.choice(pool, size=min(samples, len(pool)), replace=False)
    if work_out is not None:
        # Each Brandes pass touches every reachable node and scans every
        # reachable edge twice (BFS + accumulation); charge n + 2m per
        # sampled source as the standard estimate.
        work_out.append(int(len(sources)) * (n + 2 * len(indices)))

    for source in sources:
        # Brandes' single-source accumulation.
        stack: list[int] = []
        predecessors: list[list[int]] = [[] for _ in range(n)]
        sigma = np.zeros(n)
        sigma[source] = 1.0
        distance = np.full(n, -1, dtype=np.int64)
        distance[source] = 0
        queue = deque([int(source)])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in indices[indptr[v]:indptr[v + 1]]:
                w = int(w)
                if distance[w] < 0:
                    distance[w] = distance[v] + 1
                    queue.append(w)
                if distance[w] == distance[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        delta = np.zeros(n)
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                scores[w] += delta[w]
    return scores


def _pick_spaced(topology, order: np.ndarray, count: int) -> list[int]:
    """Take candidates in score order, skipping neighbors of those already
    picked (the standard anti-redundancy constraint of Potamias et al.;
    two endpoints of the same bridge would otherwise both be selected).
    Falls back to unconstrained picks if the graph is too small."""
    picked: list[int] = []
    excluded: set[int] = set()
    for v in order:
        v = int(v)
        if v in excluded:
            continue
        picked.append(v)
        if len(picked) == count:
            return picked
        excluded.add(v)
        excluded.update(int(u) for u in topology.out_neighbors(v))
    for v in order:  # relax the constraint if we ran out of candidates
        v = int(v)
        if v not in picked:
            picked.append(v)
            if len(picked) == count:
                break
    return picked


def select_landmarks(topology, count: int, strategy: str = "local-betweenness",
                     samples: int = 48, seed: int = 0) -> list[int]:
    """Pick ``count`` landmark vertices by one of the paper's strategies.

    ``strategy`` is one of ``"degree"``, ``"local-betweenness"``,
    ``"global-betweenness"``.  All strategies apply the same
    neighbor-exclusion spacing, so they differ only in the score.
    """
    landmarks, _ = select_landmarks_with_cost(
        topology, count, strategy, samples=samples, seed=seed,
    )
    return landmarks


def select_landmarks_with_cost(topology, count: int,
                               strategy: str = "local-betweenness",
                               samples: int = 48, seed: int = 0
                               ) -> tuple[list[int], SelectionCost]:
    """Like :func:`select_landmarks` but also returns the
    :class:`SelectionCost` — the accounting behind Section 5.5's claim
    that local betweenness costs a fraction of global."""
    if count < 1:
        raise QueryError("landmark count must be >= 1")
    cost = SelectionCost(strategy)
    if strategy == "degree":
        # Degrees are free metadata (maintained by the store).
        degrees = topology.out_degrees()
        order = np.argsort(-degrees, kind="stable")
        return _pick_spaced(topology, order, count), cost
    if strategy == "global-betweenness":
        work: list[int] = []
        scores = brandes_betweenness(
            topology.out_indptr, topology.out_indices,
            samples=samples, seed=seed, work_out=work,
        )
        cost.charge(0, sum(work))
        order = np.argsort(-scores, kind="stable")
        return _pick_spaced(topology, order, count), cost
    if strategy == "local-betweenness":
        # Each machine scores paths through its *sample*: its local
        # vertices plus the boundary — the paper notes a random partition
        # leaves each machine with full adjacency lists whose "edges link
        # to a large amount of the remaining ... vertices", so boundary
        # endpoints participate as path relays even though only local
        # vertices are ranked.
        machine_scores = np.zeros(topology.n)
        for machine in range(topology.machine_count):
            local = topology.nodes_of_machine(machine)
            if len(local) < 3:
                continue
            sub_indptr, sub_indices, mapping, local_count = _sample_subgraph(
                topology, local
            )
            # Each machine runs its Brandes pass independently and in
            # parallel on an n/m-node sample, so it affords the full
            # sample budget — the whole point of the local strategy is
            # that this is still far cheaper than one global pass.
            work: list[int] = []
            local_scores = brandes_betweenness(
                sub_indptr, sub_indices,
                nodes=np.arange(local_count),
                samples=samples,
                seed=seed + machine,
                work_out=work,
            )
            cost.charge(machine, sum(work))
            machine_scores[mapping[:local_count]] = local_scores[:local_count]
        order = np.argsort(-machine_scores, kind="stable")
        return _pick_spaced(topology, order, count), cost
    raise QueryError(
        f"unknown strategy {strategy!r}; expected degree, "
        "local-betweenness or global-betweenness"
    )


def _sample_subgraph(topology, local: np.ndarray):
    """One machine's sample: local vertices with full adjacency, boundary
    endpoints included as relay-only nodes.

    Returns (indptr, indices, node mapping, local_count): sub-ids
    ``0..local_count-1`` are the machine's own vertices; higher sub-ids
    are boundary endpoints, reachable through local vertices only (their
    own adjacency lives on other machines and is not available).  Edges
    are symmetrised so boundary nodes can relay local-boundary-local
    2-hop paths.
    """
    sub_id = {int(v): i for i, v in enumerate(local)}
    local_count = len(local)
    adjacency: list[list[int]] = [[] for _ in range(local_count)]
    boundary_back: dict[int, list[int]] = {}
    for i, v in enumerate(local):
        for u in topology.out_neighbors(int(v)):
            u = int(u)
            if u in sub_id:
                adjacency[i].append(sub_id[u])
            else:
                boundary_back.setdefault(u, []).append(i)
    mapping = list(int(v) for v in local)
    for u, backlinks in boundary_back.items():
        sub = len(mapping)
        mapping.append(u)
        adjacency.append(list(backlinks))
        for i in backlinks:
            adjacency[i].append(sub)
    indptr = np.zeros(len(adjacency) + 1, dtype=np.int64)
    chunks = []
    for i, neighbors in enumerate(adjacency):
        indptr[i + 1] = indptr[i] + len(neighbors)
        if neighbors:
            chunks.append(np.asarray(neighbors, dtype=np.int64))
    indices = (np.concatenate(chunks) if chunks
               else np.empty(0, dtype=np.int64))
    return indptr, indices, np.asarray(mapping), local_count


@dataclass
class OracleEvaluation:
    """Accuracy of a landmark set over sampled node pairs."""

    strategy: str
    landmarks: list[int]
    accuracy: float                  # mean(d_true / d_estimate), in (0, 1]
    exact_fraction: float            # pairs answered exactly
    pairs_evaluated: int
    per_pair: list[tuple[int, int, int, int]] = field(default_factory=list)


def evaluate_oracle(topology, landmarks: list[int], pairs: int = 200,
                    seed: int = 0, batch: bool = True,
                    cross_check: bool = False) -> OracleEvaluation:
    """Measure estimation accuracy of a landmark set.

    Estimates are upper bounds, so accuracy is the mean of
    true/estimated distance over random connected pairs (1.0 = always
    exact) — a monotone stand-in for the paper's "estimation accuracy %".

    ``batch`` runs the underlying BFS passes as vectorized frontier
    waves over the CSR arrays (identical distances — wave levels don't
    depend on intra-level order); ``cross_check=True`` also runs the
    scalar BFS and raises
    :class:`~repro.memcloud.cloud.BulkPathDivergence` on any mismatch.
    """
    n = topology.n
    rng = np.random.default_rng(seed)
    landmark_distances = np.stack([
        _bfs_distances(topology, lm, batch=batch, cross_check=cross_check)
        for lm in landmarks
    ])
    evaluation = OracleEvaluation(
        strategy="", landmarks=list(landmarks),
        accuracy=0.0, exact_fraction=0.0, pairs_evaluated=0,
    )
    ratios = []
    exact = 0
    attempts = 0
    while evaluation.pairs_evaluated < pairs and attempts < pairs * 20:
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        true = _pair_distance(topology, u, v, batch=batch,
                              cross_check=cross_check)
        if true <= 0:
            continue
        through = landmark_distances[:, u] + landmark_distances[:, v]
        feasible = through[np.isfinite(through)]
        if not len(feasible):
            continue
        estimate = int(feasible.min())
        ratios.append(true / estimate)
        if estimate == true:
            exact += 1
        evaluation.pairs_evaluated += 1
        evaluation.per_pair.append((u, v, true, estimate))
    if ratios:
        evaluation.accuracy = float(np.mean(ratios))
        evaluation.exact_fraction = exact / len(ratios)
    return evaluation


def _gather_wave(indptr: np.ndarray, indices: np.ndarray,
                 frontier: np.ndarray) -> np.ndarray:
    """All out-neighbors of a frontier in one vectorized CSR gather."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=indices.dtype)
    shifts = np.concatenate((np.zeros(1, dtype=np.int64),
                             np.cumsum(counts)[:-1]))
    positions = np.repeat(indptr[frontier] - shifts, counts)
    return indices[positions + np.arange(total)]


def _bfs_distances(topology, source: int, batch: bool = True,
                   cross_check: bool = False) -> np.ndarray:
    if cross_check and batch:
        mine = _bfs_distances_batch(topology, source)
        theirs = _bfs_distances_scalar(topology, source)
        if not np.array_equal(mine, theirs):
            raise BulkPathDivergence(
                f"batch BFS from {source} diverges from scalar at nodes "
                f"{np.flatnonzero(mine != theirs)[:10].tolist()}"
            )
        return mine
    if batch:
        return _bfs_distances_batch(topology, source)
    return _bfs_distances_scalar(topology, source)


def _bfs_distances_scalar(topology, source: int) -> np.ndarray:
    n = topology.n
    dist = np.full(n, np.inf)
    dist[source] = 0
    frontier = [source]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for v in frontier:
            for u in topology.out_neighbors(v):
                u = int(u)
                if not np.isfinite(dist[u]):
                    dist[u] = level
                    next_frontier.append(u)
        frontier = next_frontier
    return dist


def _bfs_distances_batch(topology, source: int) -> np.ndarray:
    """Wave-at-a-time BFS: one CSR gather per level.

    Distances are level numbers, so intra-wave visit order is
    irrelevant — the result is identical to the scalar walk.
    """
    dist = np.full(topology.n, np.inf)
    dist[source] = 0
    indptr, indices = topology.out_indptr, topology.out_indices
    frontier = np.asarray([source], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        flat = _gather_wave(indptr, indices, frontier)
        fresh = flat[~np.isfinite(dist[flat])] if len(flat) else flat
        frontier = np.unique(fresh)
        dist[frontier] = level
    return dist


def _pair_distance(topology, u: int, v: int, batch: bool = True,
                   cross_check: bool = False) -> int:
    """Exact BFS distance (early-exit); -1 if disconnected."""
    if cross_check and batch:
        mine = _pair_distance_batch(topology, u, v)
        theirs = _pair_distance_scalar(topology, u, v)
        if mine != theirs:
            raise BulkPathDivergence(
                f"batch pair distance ({u}, {v}) diverges from scalar: "
                f"{mine} != {theirs}"
            )
        return mine
    if batch:
        return _pair_distance_batch(topology, u, v)
    return _pair_distance_scalar(topology, u, v)


def _pair_distance_scalar(topology, u: int, v: int) -> int:
    if u == v:
        return 0
    seen = {u}
    frontier = [u]
    level = 0
    while frontier:
        level += 1
        next_frontier = []
        for x in frontier:
            for y in topology.out_neighbors(x):
                y = int(y)
                if y == v:
                    return level
                if y not in seen:
                    seen.add(y)
                    next_frontier.append(y)
        frontier = next_frontier
    return -1


def _pair_distance_batch(topology, u: int, v: int) -> int:
    """Vectorized early-exit BFS; wave levels match the scalar walk."""
    if u == v:
        return 0
    seen = np.zeros(topology.n, dtype=bool)
    seen[u] = True
    indptr, indices = topology.out_indptr, topology.out_indices
    frontier = np.asarray([u], dtype=np.int64)
    level = 0
    while len(frontier):
        level += 1
        flat = _gather_wave(indptr, indices, frontier)
        if len(flat) and np.any(flat == v):
            return level
        fresh = flat[~seen[flat]] if len(flat) else flat
        frontier = np.unique(fresh)
        seen[frontier] = True
    return -1
