"""Graph algorithms: online queries and offline analytics (Section 5).

Online (latency-bound, exploration-based):

* :mod:`~repro.algorithms.people_search` — the k-hop "David problem".
* :mod:`~repro.algorithms.subgraph` — STwig-style subgraph matching
  without structure indexes (Section 5.2, Figure 8a, Figure 14a).
* :mod:`~repro.algorithms.landmarks` — the landmark distance oracle and
  its three selection strategies (Section 5.5, Figure 8b).

Offline (throughput-bound, vertex-centric):

* :mod:`~repro.algorithms.pagerank`, :mod:`~repro.algorithms.bfs`,
  :mod:`~repro.algorithms.sssp`, :mod:`~repro.algorithms.wcc` — each with
  a :class:`~repro.compute.vertex.VertexProgram` (the reference semantics)
  and a vectorised runner whose per-superstep costs follow the same
  traffic model (Figure 12).
* :mod:`~repro.algorithms.partitioning` — multi-level graph partitioning
  (Section 5.3's "billion-node partitioning" workload).
"""

from .pagerank import PageRankProgram, PageRankRun, pagerank, pagerank_async
from .bfs import BfsProgram, BfsRun, bfs
from .sssp import SsspProgram, sssp
from .wcc import WccProgram, wcc
from .triangles import TriangleProgram, TriangleRun, count_triangles
from .people_search import PeopleSearchResult, people_search
from .subgraph import (
    Query,
    SubgraphMatchResult,
    generate_query_dfs,
    generate_query_random,
    match_subgraph,
)
from .landmarks import (
    OracleEvaluation,
    evaluate_oracle,
    select_landmarks,
)
from .partitioning import PartitioningResult, edge_cut, hash_partition, multilevel_partition

__all__ = [
    "PageRankProgram",
    "PageRankRun",
    "pagerank",
    "pagerank_async",
    "BfsProgram",
    "BfsRun",
    "bfs",
    "SsspProgram",
    "sssp",
    "WccProgram",
    "wcc",
    "TriangleProgram",
    "TriangleRun",
    "count_triangles",
    "PeopleSearchResult",
    "people_search",
    "Query",
    "SubgraphMatchResult",
    "generate_query_dfs",
    "generate_query_random",
    "match_subgraph",
    "OracleEvaluation",
    "select_landmarks",
    "evaluate_oracle",
    "PartitioningResult",
    "multilevel_partition",
    "hash_partition",
    "edge_cut",
]
