"""Result-validation kernels (the Graph 500 discipline).

Section 7 notes that the "Graph 500 Benchmark adopts BFS as one of its
two computation kernels"; Graph 500 also mandates that every BFS result
be *validated*, not just timed.  These checkers implement the same
discipline for the reproduction's analytics results, and the test suite
plus benchmarks use them instead of trusting the engines.
"""

from __future__ import annotations

import numpy as np

from ..errors import ComputeError


def validate_bfs_levels(topology, root: int, levels: np.ndarray) -> None:
    """Graph500-style BFS validation; raises ComputeError on any defect.

    Checks: the root has level 0; every reached vertex (except the root)
    has an in-neighbor exactly one level shallower; no edge spans more
    than one level; unreached vertices have no reached in-neighbor.
    """
    levels = np.asarray(levels)
    n = topology.n
    if len(levels) != n:
        raise ComputeError("levels length != vertex count")
    if levels[root] != 0:
        raise ComputeError(f"root level is {levels[root]}, not 0")
    if (levels[levels >= 0] > n).any():
        raise ComputeError("a level exceeds the vertex count")

    src = np.repeat(np.arange(n), topology.out_degrees())
    dst = topology.out_indices
    both_reached = (levels[src] >= 0) & (levels[dst] >= 0)
    # A traversed edge cannot skip a level downwards; on a directed
    # graph an edge may point arbitrarily far back *up* the tree, so
    # only the forward direction is constrained.
    if (levels[dst[both_reached]]
            > levels[src[both_reached]] + 1).any():
        raise ComputeError("an edge skips a BFS level")

    # Every reached vertex has a predecessor one level up.
    has_predecessor = np.zeros(n, dtype=bool)
    parent_edge = both_reached & (levels[dst] == levels[src] + 1)
    has_predecessor[dst[parent_edge]] = True
    reached = np.nonzero(levels > 0)[0]
    orphans = reached[~has_predecessor[reached]]
    if len(orphans):
        raise ComputeError(
            f"{len(orphans)} reached vertices have no parent edge "
            f"(first: {int(orphans[0])})"
        )

    # Unreached vertices must not be adjacent to any reached vertex.
    leak = (levels[src] >= 0) & (levels[dst] < 0)
    if leak.any():
        vertex = int(dst[np.nonzero(leak)[0][0]])
        raise ComputeError(
            f"vertex {vertex} is unreached but has a reached in-neighbor"
        )


def validate_pagerank(ranks: np.ndarray, tolerance: float = 1e-6) -> None:
    """PageRank sanity: a strictly positive probability distribution."""
    ranks = np.asarray(ranks)
    if not np.isfinite(ranks).all():
        raise ComputeError("non-finite PageRank values")
    if (ranks <= 0).any():
        raise ComputeError("non-positive PageRank values")
    total = float(ranks.sum())
    if abs(total - 1.0) > tolerance:
        raise ComputeError(f"ranks sum to {total}, not 1")


def validate_components(topology, labels: np.ndarray) -> None:
    """WCC sanity: endpoints of every edge share a label, and each label
    equals the smallest member of its component (HashMin convention)."""
    labels = np.asarray(labels)
    n = topology.n
    src = np.repeat(np.arange(n), topology.out_degrees())
    dst = topology.out_indices
    if (labels[src] != labels[dst]).any():
        raise ComputeError("an edge crosses two components")
    for label in np.unique(labels):
        members = np.nonzero(labels == label)[0]
        if label != members.min():
            raise ComputeError(
                f"component label {int(label)} is not its minimum member"
            )
