"""Breadth-first search (Fig 12c, Fig 13; Graph 500's kernel).

:class:`BfsProgram` gives the vertex-centric reference; :func:`bfs` is
the vectorised level-synchronous runner whose per-level costs follow the
frontier (only frontier vertices compute and send — the level structure
is what makes BFS cheaper than PageRank per superstep but latency-bound
on diameter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import SimNetwork
from ..compute.vertex import VertexProgram
from ._traffic import TrafficModel

UNREACHED = -1


class BfsProgram(VertexProgram):
    """Vertex-centric BFS: value is the node's level (or -1).

    Declares the ``min`` combiner (a vertex only consumes
    ``min(messages)``); :meth:`compute_batch` is the vectorized kernel
    with identical semantics.
    """

    restrictive = True
    uniform_messages = True
    message_bytes = 12  # dst id + level
    combiner = "min"
    value_dtype = np.int64

    def __init__(self, root: int):
        self.root = root

    def init(self, ctx, vertex: int) -> None:
        ctx.set_value(vertex, 0 if vertex == self.root else UNREACHED)

    def init_batch(self, ctx) -> None:
        ctx.values[:] = UNREACHED
        ctx.values[self.root] = 0

    def compute(self, ctx, vertex: int, messages: list) -> None:
        if ctx.superstep == 0:
            if vertex == self.root:
                ctx.send_to_neighbors(1)
            ctx.vote_to_halt()
            return
        if ctx.value == UNREACHED and messages:
            level = min(messages)
            ctx.value = level
            ctx.send_to_neighbors(level + 1)
        ctx.vote_to_halt()

    def compute_batch(self, ctx, vertices, combined, received) -> None:
        values = ctx.values
        if ctx.superstep == 0:
            roots = vertices[vertices == self.root]
            if len(roots):
                ctx.send_to_neighbors(roots,
                                      np.ones(len(roots), dtype=np.int64))
            ctx.halt(vertices)
            return
        fresh = received & (values[vertices] == UNREACHED)
        discovered = vertices[fresh]
        if len(discovered):
            levels = combined[fresh]
            values[discovered] = levels
            ctx.send_to_neighbors(discovered, levels + 1)
        ctx.halt(vertices)


@dataclass
class BfsRun:
    """Result of a vectorised BFS."""

    levels: np.ndarray
    level_times: list[float] = field(default_factory=list)

    @property
    def elapsed(self) -> float:
        return sum(self.level_times)

    @property
    def depth(self) -> int:
        reached = self.levels[self.levels >= 0]
        return int(reached.max()) if len(reached) else 0

    @property
    def reached(self) -> int:
        return int((self.levels >= 0).sum())


def bfs(topology, root: int, network: SimNetwork | None = None,
        params: ComputeParams | None = None,
        traffic: TrafficModel | None = None,
        hub_buffering: bool = True) -> BfsRun:
    """Level-synchronous BFS from dense vertex ``root``.

    Each level is one BSP superstep: the frontier scans its adjacency and
    messages undiscovered neighbors; cost is charged per level from the
    actual frontier (so early small levels are cheap and the big middle
    levels dominate, the classic BFS cost profile).
    """
    n = topology.n
    if not 0 <= root < n:
        raise ComputeError(f"root {root} out of range [0, {n})")
    network = network or SimNetwork()
    params = params or ComputeParams()
    traffic = traffic or TrafficModel(
        topology, hub_buffering=hub_buffering, message_bytes=12
    )

    levels = np.full(n, UNREACHED, dtype=np.int64)
    levels[root] = 0
    frontier = np.zeros(n, dtype=bool)
    frontier[root] = True
    run = BfsRun(levels=levels)

    level = 0
    while frontier.any():
        # Discover the next frontier from the current one.
        frontier_idx = np.nonzero(frontier)[0]
        starts = topology.out_indptr[frontier_idx]
        ends = topology.out_indptr[frontier_idx + 1]
        total = int((ends - starts).sum())
        if total:
            gather = np.concatenate([
                topology.out_indices[s:e] for s, e in zip(starts, ends)
            ]) if len(frontier_idx) else np.empty(0, dtype=np.int64)
            fresh = np.unique(gather[levels[gather] == UNREACHED])
        else:
            fresh = np.empty(0, dtype=np.int64)

        pair_counts = traffic.frontier_traffic(frontier)
        active = traffic.per_machine_vertices(frontier)
        edges = traffic.per_machine_edges(frontier)
        elapsed = traffic.charge_superstep(
            network, params, active, edges, pair_counts
        )
        run.level_times.append(elapsed)

        level += 1
        levels[fresh] = level
        frontier = np.zeros(n, dtype=bool)
        frontier[fresh] = True
    run.levels = levels
    return run
