"""People search — the paper's "David problem" (Section 5.1, Fig 12a).

"On a social network, for a given user, find anyone whose first name is
David among his/her friends, friends' friends, and friends' friends'
friends."  No index can serve this on a web-scale graph; Trinity answers
it by raw memory-speed exploration: each hop sends asynchronous requests
to the machines owning the frontier, which expand their local cells in
parallel and forward the next frontier.

The implementation runs over the *cloud-resident* cells (real blob
decodes, not a topology snapshot — this is the online path), and each hop
is one :class:`~repro.net.simnet.ParallelRound`: per-machine cell/edge
costs plus the packed cross-machine frontier messages.

Two host-speed gears share that one cost model:

* the scalar path (``batch=False``) — one ``cloud.get`` plus one
  whole-cell decode per frontier node;
* the batched path (default) — per hop, one vectorized
  ``machine_of_batch`` ownership pass groups the frontier, each machine
  group expands with one ``outlinks_batch`` CSR decode, and the
  name-check compares the whole next frontier's raw utf-8 bytes with
  one ``field_eq_batch`` (no Python string is ever built).

Both paths visit nodes in the same order and charge identical simulated
costs; ``cross_check=True`` replays the scalar path (per batched read
*and* end-to-end) and raises on any divergence.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import QueryError
from ..memcloud.cloud import BulkPathDivergence
from ..net.simnet import ParallelRound, SimNetwork

_FRONTIER_ID_BYTES = 9   # 8-byte cell id + 1-byte hop tag


class _VisitedTracker:
    """Visited-id set over int64 arrays.

    A dense bool mask (O(1) membership, no sorting) while ids stay under
    ``_MASK_CAP``; permanently switches to the sorted-array
    ``np.isin``/``np.union1d`` representation the first time an id is
    negative or too large for a mask.  Both representations answer
    ``unseen`` identically, so the switch is invisible to the search.
    """

    _MASK_CAP = 1 << 26  # a 64 MiB mask at most

    def __init__(self, start: int) -> None:
        self.count = 1
        self._sorted: np.ndarray | None = None
        if 0 <= start < self._MASK_CAP:
            self._mask = np.zeros(max(1024, start + 1), dtype=bool)
            self._mask[start] = True
        else:
            self._mask = None
            self._sorted = np.asarray([start], dtype=np.int64)

    def unseen(self, ids: np.ndarray) -> np.ndarray:
        """Not-yet-visited flag per id (duplicates all flagged)."""
        if self._mask is not None and len(ids):
            lo, hi = int(ids.min()), int(ids.max())
            if lo < 0 or hi >= self._MASK_CAP:
                self._sorted = np.flatnonzero(self._mask)
                self._mask = None
            elif hi >= len(self._mask):
                grown = np.zeros(max(hi + 1, 2 * len(self._mask)),
                                 dtype=bool)
                grown[:len(self._mask)] = self._mask
                self._mask = grown
        if self._mask is not None:
            return ~self._mask[ids]
        return ~np.isin(ids, self._sorted)

    def add(self, new: np.ndarray) -> None:
        """Record ids (must be duplicate-free and all unseen)."""
        self.count += len(new)
        if self._mask is not None:
            self._mask[new] = True
        else:
            self._sorted = np.union1d(self._sorted, new)


@dataclass
class PeopleSearchResult:
    """Matches and per-hop accounting for one query."""

    start: int
    name: str
    hops: int
    matches: list[int] = field(default_factory=list)
    visited: int = 0
    hop_times: list[float] = field(default_factory=list)
    messages: int = 0

    @property
    def elapsed(self) -> float:
        """Simulated response time of the query."""
        return sum(self.hop_times)


def people_search(graph, start: int, name: str, hops: int = 3,
                  network: SimNetwork | None = None,
                  params: ComputeParams | None = None,
                  batch: bool = True,
                  cross_check: bool = False) -> PeopleSearchResult:
    """Find all nodes named ``name`` within ``hops`` of ``start``.

    The graph must use a schema with a ``Name`` attribute (see
    :func:`repro.graph.model.social_graph_schema`).  ``batch`` selects
    the vectorized frontier expansion; ``cross_check=True`` additionally
    shadow-replays the scalar path and raises
    :class:`~repro.memcloud.cloud.BulkPathDivergence` if the two ever
    disagree (matches, visited set, messages or simulated hop times).
    """
    if hops < 1:
        raise QueryError("hops must be >= 1")
    if "Name" not in graph.graph_schema.attribute_fields:
        raise QueryError("people_search needs a graph with a Name attribute")
    network = network or SimNetwork()
    params = params or ComputeParams()
    if not batch:
        return _people_search_scalar(graph, start, name, hops, network,
                                     params)
    result = _people_search_batch(graph, start, name, hops, network,
                                  params, cross_check)
    if cross_check:
        shadow = _people_search_scalar(
            graph, start, name, hops, SimNetwork(network.params), params,
        )
        _compare_results(result, shadow)
    return result


def _compare_results(batched: PeopleSearchResult,
                     scalar: PeopleSearchResult) -> None:
    for attr in ("matches", "visited", "messages", "hop_times"):
        mine, theirs = getattr(batched, attr), getattr(scalar, attr)
        if mine != theirs:
            raise BulkPathDivergence(
                f"people_search batch path diverges from scalar on "
                f"{attr}: {mine!r} != {theirs!r}"
            )


def _people_search_scalar(graph, start: int, name: str, hops: int,
                          network: SimNetwork,
                          params: ComputeParams) -> PeopleSearchResult:
    result = PeopleSearchResult(start=start, name=name, hops=hops)
    visited = {start}
    frontier = [start]
    for hop in range(1, hops + 1):
        if not frontier:
            break
        round_ = ParallelRound(network)
        # Group the frontier by owning machine; each machine expands its
        # share in parallel.
        by_machine: dict[int, list[int]] = defaultdict(list)
        for node in frontier:
            by_machine[graph.machine_of(node)].append(node)

        next_frontier: list[int] = []
        delivery: dict[tuple[int, int], int] = defaultdict(int)
        for machine, nodes in by_machine.items():
            edges_scanned = 0
            for node in nodes:
                neighbors = graph.outlinks(node)
                edges_scanned += len(neighbors)
                for neighbor in neighbors:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    delivery[(machine, graph.machine_of(neighbor))] += 1
            # Expansion: one cell access per frontier node + its edges.
            round_.add_compute(
                machine,
                len(nodes) * params.cell_access_cost
                + edges_scanned * params.edge_scan_cost,
            )

        # Each delivered node is name-checked on its own machine (a cell
        # access to read the Name attribute).
        checks_by_machine: dict[int, int] = defaultdict(int)
        for node in next_frontier:
            checks_by_machine[graph.machine_of(node)] += 1
            if graph.attribute(node, "Name") == name:
                result.matches.append(node)
        for machine, checks in checks_by_machine.items():
            round_.add_compute(machine, checks * params.cell_access_cost)

        for (src, dst), count in delivery.items():
            round_.add_message(src, dst, count * _FRONTIER_ID_BYTES, count)
            result.messages += count

        result.hop_times.append(
            round_.finish(parallelism=params.threads_per_machine)
        )
        frontier = next_frontier
    result.visited = len(visited) - 1
    result.matches.sort()
    return result


def _people_search_batch(graph, start: int, name: str, hops: int,
                         network: SimNetwork, params: ComputeParams,
                         cross_check: bool) -> PeopleSearchResult:
    """Vectorized frontier expansion; bit-identical accounting.

    Per hop: one ``machine_of_batch`` pass routes the frontier, machine
    groups are processed in scalar first-appearance order, each group
    expands with one CSR ``outlinks_batch`` decode, newly discovered
    nodes are deduplicated with a first-occurrence ``np.unique`` (the
    scalar visited-set semantics), and the whole next frontier is
    name-checked through one ``field_eq_batch`` byte compare.
    """
    result = PeopleSearchResult(start=start, name=name, hops=hops)
    visited = _VisitedTracker(start)
    frontier = np.asarray([start], dtype=np.int64)
    for hop in range(1, hops + 1):
        if not len(frontier):
            break
        round_ = ParallelRound(network)
        owners = graph.machine_of_batch(frontier)
        # Machine groups in first-appearance order — the scalar loop's
        # dict-insertion order, which decides who "discovers" a node
        # reachable from two machines in the same hop.
        _, first_positions = np.unique(owners, return_index=True)
        group_machines = owners[np.sort(first_positions)]

        new_groups: list[np.ndarray] = []
        delivery: dict[tuple[int, int], int] = defaultdict(int)
        for machine in group_machines.tolist():
            nodes = frontier[owners == machine]
            indptr, flat = graph.outlinks_batch(nodes,
                                                cross_check=cross_check)
            edges_scanned = int(indptr[-1])
            # First-occurrence dedup of this group's discoveries against
            # everything visited so far (including earlier groups of the
            # same hop — ``visited`` is updated between groups).
            fresh = flat[visited.unseen(flat)]
            _, first_seen = np.unique(fresh, return_index=True)
            new = fresh[np.sort(first_seen)]
            if len(new):
                destinations = graph.machine_of_batch(new)
                counts = np.bincount(destinations)
                # Destination keys in first-appearance order — the
                # scalar loop's dict-insertion order.  finish() sums
                # each sender's outgoing entries in that order, and
                # float addition is not associative.
                _, first_dst = np.unique(destinations, return_index=True)
                for dst in destinations[np.sort(first_dst)].tolist():
                    delivery[(machine, dst)] += int(counts[dst])
                visited.add(new)
                new_groups.append(new)
            round_.add_compute(
                machine,
                len(nodes) * params.cell_access_cost
                + edges_scanned * params.edge_scan_cost,
            )

        next_frontier = (np.concatenate(new_groups) if new_groups
                         else np.empty(0, dtype=np.int64))
        if len(next_frontier):
            check_machines = graph.machine_of_batch(next_frontier)
            checks = np.bincount(check_machines)
            for machine in np.flatnonzero(checks).tolist():
                round_.add_compute(
                    machine, int(checks[machine]) * params.cell_access_cost)
            hits = graph.field_eq_batch(next_frontier, "Name", name,
                                        cross_check=cross_check)
            result.matches.extend(next_frontier[hits].tolist())

        for (src, dst), count in delivery.items():
            round_.add_message(src, dst, count * _FRONTIER_ID_BYTES, count)
            result.messages += count

        result.hop_times.append(
            round_.finish(parallelism=params.threads_per_machine)
        )
        frontier = next_frontier
    result.visited = visited.count - 1
    result.matches.sort()
    return result
