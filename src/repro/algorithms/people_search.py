"""People search — the paper's "David problem" (Section 5.1, Fig 12a).

"On a social network, for a given user, find anyone whose first name is
David among his/her friends, friends' friends, and friends' friends'
friends."  No index can serve this on a web-scale graph; Trinity answers
it by raw memory-speed exploration: each hop sends asynchronous requests
to the machines owning the frontier, which expand their local cells in
parallel and forward the next frontier.

The implementation runs over the *cloud-resident* cells (real blob
decodes, not a topology snapshot — this is the online path), and each hop
is one :class:`~repro.net.simnet.ParallelRound`: per-machine cell/edge
costs plus the packed cross-machine frontier messages.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..config import ComputeParams
from ..errors import QueryError
from ..net.simnet import ParallelRound, SimNetwork

_FRONTIER_ID_BYTES = 9   # 8-byte cell id + 1-byte hop tag


@dataclass
class PeopleSearchResult:
    """Matches and per-hop accounting for one query."""

    start: int
    name: str
    hops: int
    matches: list[int] = field(default_factory=list)
    visited: int = 0
    hop_times: list[float] = field(default_factory=list)
    messages: int = 0

    @property
    def elapsed(self) -> float:
        """Simulated response time of the query."""
        return sum(self.hop_times)


def people_search(graph, start: int, name: str, hops: int = 3,
                  network: SimNetwork | None = None,
                  params: ComputeParams | None = None) -> PeopleSearchResult:
    """Find all nodes named ``name`` within ``hops`` of ``start``.

    The graph must use a schema with a ``Name`` attribute (see
    :func:`repro.graph.model.social_graph_schema`).
    """
    if hops < 1:
        raise QueryError("hops must be >= 1")
    if "Name" not in graph.graph_schema.attribute_fields:
        raise QueryError("people_search needs a graph with a Name attribute")
    network = network or SimNetwork()
    params = params or ComputeParams()

    result = PeopleSearchResult(start=start, name=name, hops=hops)
    visited = {start}
    frontier = [start]
    for hop in range(1, hops + 1):
        if not frontier:
            break
        round_ = ParallelRound(network)
        # Group the frontier by owning machine; each machine expands its
        # share in parallel.
        by_machine: dict[int, list[int]] = defaultdict(list)
        for node in frontier:
            by_machine[graph.machine_of(node)].append(node)

        next_frontier: list[int] = []
        delivery: dict[tuple[int, int], int] = defaultdict(int)
        for machine, nodes in by_machine.items():
            edges_scanned = 0
            for node in nodes:
                neighbors = graph.outlinks(node)
                edges_scanned += len(neighbors)
                for neighbor in neighbors:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    delivery[(machine, graph.machine_of(neighbor))] += 1
            # Expansion: one cell access per frontier node + its edges.
            round_.add_compute(
                machine,
                len(nodes) * params.cell_access_cost
                + edges_scanned * params.edge_scan_cost,
            )

        # Each delivered node is name-checked on its own machine (a cell
        # access to read the Name attribute).
        checks_by_machine: dict[int, int] = defaultdict(int)
        for node in next_frontier:
            checks_by_machine[graph.machine_of(node)] += 1
            if graph.attribute(node, "Name") == name:
                result.matches.append(node)
        for machine, checks in checks_by_machine.items():
            round_.add_compute(machine, checks * params.cell_access_cost)

        for (src, dst), count in delivery.items():
            round_.add_message(src, dst, count * _FRONTIER_ID_BYTES, count)
            result.messages += count

        result.hop_times.append(
            round_.finish(parallelism=params.threads_per_machine)
        )
        frontier = next_frontier
    result.visited = len(visited) - 1
    result.matches.sort()
    return result
