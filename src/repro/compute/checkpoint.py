"""Checkpointing of computations to TFS (Section 6.2).

"For BSP based synchronous computation, we make check points every a few
supersteps.  These check points are written to the persistent file system
for future failure recovery."  Asynchronous computations instead write
*snapshots* after a Safra-certified quiescent interruption; both use the
same manager.

Checkpoint payloads are JSON (vertex values are numbers, strings, lists
or null), which keeps images portable and diffable.

For checkpoint-*restart* — resuming a BSP job after an injected machine
crash with bit-identical semantics — JSON is not enough: the engine's
state includes numpy arrays (values, active mask, combined inbox) whose
dtypes must round-trip exactly.  ``save_state``/``load_state`` keep
pickled full-fidelity engine images next to the JSON value vectors
(``.state`` beside ``.ckpt``).
"""

from __future__ import annotations

import json
import pickle

from ..errors import RecoveryError
from ..memcloud import persistence as trunk_persistence
from ..tfs import TrinityFileSystem


class CheckpointManager:
    """Writes and restores value-vector checkpoints in TFS."""

    def __init__(self, tfs: TrinityFileSystem, job: str = "job",
                 every: int = 5):
        if every < 1:
            raise RecoveryError("checkpoint interval must be >= 1")
        self.tfs = tfs
        self.job = job
        self.every = every
        self.saved = 0

    def _path(self, tag: int) -> str:
        return f"/trinity/checkpoints/{self.job}/{tag:08d}.ckpt"

    def _state_path(self, tag: int) -> str:
        return f"/trinity/checkpoints/{self.job}/{tag:08d}.state"

    def _tags_with_suffix(self, suffix: str) -> list[int]:
        prefix = f"/trinity/checkpoints/{self.job}/"
        out = []
        for path in self.tfs.list_files(prefix):
            if path.endswith(suffix):
                out.append(int(path[len(prefix):].split(".")[0]))
        return sorted(out)

    def maybe_checkpoint(self, superstep: int, values) -> bool:
        """BSP hook: checkpoint every ``every`` supersteps; True if saved."""
        if (superstep + 1) % self.every:
            return False
        self.save(superstep, values)
        return True

    def save(self, tag: int, values, metadata: dict | None = None) -> None:
        """Persist a value vector under an integer tag."""
        document = {
            "job": self.job,
            "tag": tag,
            "metadata": metadata or {},
            "values": list(values),
        }
        try:
            payload = json.dumps(document).encode("utf-8")
        except TypeError as exc:
            raise RecoveryError(
                f"checkpoint values are not JSON-serialisable: {exc}"
            ) from None
        self.tfs.write(self._path(tag), payload)
        self.saved += 1

    def tags(self) -> list[int]:
        """Available JSON checkpoint tags, ascending."""
        return self._tags_with_suffix(".ckpt")

    def load(self, tag: int) -> tuple[list, dict]:
        """Restore one checkpoint: (values, metadata)."""
        document = json.loads(self.tfs.read(self._path(tag)).decode("utf-8"))
        return document["values"], document["metadata"]

    def load_latest(self) -> tuple[int, list, dict]:
        """Restore the newest checkpoint: (tag, values, metadata)."""
        tags = self.tags()
        if not tags:
            raise RecoveryError(f"no checkpoints for job {self.job!r}")
        tag = tags[-1]
        values, metadata = self.load(tag)
        return tag, values, metadata

    # -- full-fidelity engine images (checkpoint-restart) --------------------

    def save_state(self, tag: int, state: dict) -> None:
        """Persist a pickled engine-state image under an integer tag.

        Unlike :meth:`save`, the payload is a full-fidelity pickle —
        numpy arrays, dtypes and inbox structures round-trip exactly, so
        a restart resumes the computation bit-identically.
        """
        self.tfs.write(self._state_path(tag), pickle.dumps(state))
        self.saved += 1

    def load_state(self, tag: int) -> dict:
        """Restore one engine-state image."""
        return pickle.loads(self.tfs.read(self._state_path(tag)))

    def state_tags(self) -> list[int]:
        """Available engine-state image tags, ascending."""
        return self._tags_with_suffix(".state")

    def latest_state(self) -> tuple[int, dict]:
        """Restore the newest engine-state image: (tag, state)."""
        tags = self.state_tags()
        if not tags:
            raise RecoveryError(f"no state images for job {self.job!r}")
        return tags[-1], self.load_state(tags[-1])

    # -- memory-cloud images (page files, not pickles) -----------------------

    def _trunk_path(self, tag: int, trunk_id: int) -> str:
        return (f"/trinity/checkpoints/{self.job}/{tag:08d}.trunks/"
                f"{trunk_id:05d}.img")

    def save_cloud(self, tag: int, cloud) -> int:
        """Checkpoint every trunk of a memory cloud; returns image bytes.

        Each trunk is persisted in its storage tier's native image
        format (:mod:`repro.memcloud.persistence`): paged trunks write
        back their dirty pages and persist the page file verbatim (v2),
        resident trunks keep the portable cell image (v1).  Nothing is
        pickled — the images are the same format machine recovery uses.
        """
        total = 0
        for trunk_id, trunk in cloud.trunks.items():
            image = trunk_persistence.trunk_to_bytes(trunk)
            self.tfs.write(self._trunk_path(tag, trunk_id), image)
            total += len(image)
        self.saved += 1
        return total

    def load_cloud(self, tag: int, cloud) -> int:
        """Restore every trunk of a cloud from a checkpoint tag.

        Trunks are replaced wholesale through
        :func:`repro.memcloud.persistence.adopt_trunk_image`, which
        carries each trunk's mutation epoch forward so outstanding spans
        and serving-layer caches stamped before the restore can never
        validate against the restored state.  Returns cells restored.
        """
        cells = 0
        for trunk_id in list(cloud.trunks):
            image = self.tfs.read(self._trunk_path(tag, trunk_id))
            cells += trunk_persistence.adopt_trunk_image(
                cloud, trunk_id, image)
        return cells

    def prune(self, keep: int = 2) -> int:
        """Drop all but the newest ``keep`` checkpoints; returns removed."""
        tags = self.tags()
        removed = 0
        for tag in tags[:-keep] if keep else tags:
            self.tfs.delete(self._path(tag))
            removed += 1
        return removed
