"""Checkpointing of computations to TFS (Section 6.2).

"For BSP based synchronous computation, we make check points every a few
supersteps.  These check points are written to the persistent file system
for future failure recovery."  Asynchronous computations instead write
*snapshots* after a Safra-certified quiescent interruption; both use the
same manager.

Checkpoint payloads are JSON (vertex values are numbers, strings, lists
or null), which keeps images portable and diffable.
"""

from __future__ import annotations

import json

from ..errors import RecoveryError
from ..tfs import TrinityFileSystem


class CheckpointManager:
    """Writes and restores value-vector checkpoints in TFS."""

    def __init__(self, tfs: TrinityFileSystem, job: str = "job",
                 every: int = 5):
        if every < 1:
            raise RecoveryError("checkpoint interval must be >= 1")
        self.tfs = tfs
        self.job = job
        self.every = every
        self.saved = 0

    def _path(self, tag: int) -> str:
        return f"/trinity/checkpoints/{self.job}/{tag:08d}.ckpt"

    def maybe_checkpoint(self, superstep: int, values) -> bool:
        """BSP hook: checkpoint every ``every`` supersteps; True if saved."""
        if (superstep + 1) % self.every:
            return False
        self.save(superstep, values)
        return True

    def save(self, tag: int, values, metadata: dict | None = None) -> None:
        """Persist a value vector under an integer tag."""
        document = {
            "job": self.job,
            "tag": tag,
            "metadata": metadata or {},
            "values": list(values),
        }
        try:
            payload = json.dumps(document).encode("utf-8")
        except TypeError as exc:
            raise RecoveryError(
                f"checkpoint values are not JSON-serialisable: {exc}"
            ) from None
        self.tfs.write(self._path(tag), payload)
        self.saved += 1

    def tags(self) -> list[int]:
        """Available checkpoint tags, ascending."""
        prefix = f"/trinity/checkpoints/{self.job}/"
        out = []
        for path in self.tfs.list_files(prefix):
            stem = path[len(prefix):].split(".")[0]
            out.append(int(stem))
        return sorted(out)

    def load(self, tag: int) -> tuple[list, dict]:
        """Restore one checkpoint: (values, metadata)."""
        document = json.loads(self.tfs.read(self._path(tag)).decode("utf-8"))
        return document["values"], document["metadata"]

    def load_latest(self) -> tuple[int, list, dict]:
        """Restore the newest checkpoint: (tag, values, metadata)."""
        tags = self.tags()
        if not tags:
            raise RecoveryError(f"no checkpoints for job {self.job!r}")
        tag = tags[-1]
        values, metadata = self.load(tag)
        return tag, values, metadata

    def prune(self, keep: int = 2) -> int:
        """Drop all but the newest ``keep`` checkpoints; returns removed."""
        tags = self.tags()
        removed = 0
        for tag in tags[:-keep] if keep else tags:
            self.tfs.delete(self._path(tag))
            removed += 1
        return removed
