"""Asynchronous vertex computation (Sections 5.3 and 6.2).

In the asynchronous model a vertex "can perform computation just based on
partially updated information from its incoming links" — no supersteps,
no barriers.  Trinity supports it alongside BSP ("Trinity can adopt any
computation model"), and Section 6.2 describes its snapshot protocol:
issue a periodic interruption, let vertices finish the job in hand, run
Safra's termination detection, and write a snapshot once the system is
quiescent.

The engine maintains per-machine work queues; an update function examines
the current (possibly stale-free, since we process sequentially) values
and returns the vertices to reschedule.  Cross-machine reschedules are
messages: they are charged to the simulated network and tracked by the
Safra detector.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import ParallelRound, SimNetwork
from ..obs import Tracer
from .checkpoint import CheckpointManager
from .termination import SafraDetector


@dataclass
class AsyncResult:
    """Outcome of an asynchronous run."""

    values: list
    updates: int = 0          # vertex update executions
    messages: int = 0         # cross-machine reschedules
    snapshots: list[int] = field(default_factory=list)
    elapsed: float = 0.0      # simulated seconds
    terminated: bool = False  # Safra-certified quiescence


class AsyncEngine:
    """Barrier-free vertex processing with quiescence detection."""

    def __init__(self, topology, network: SimNetwork | None = None,
                 compute_params: ComputeParams | None = None,
                 checkpoints: CheckpointManager | None = None,
                 interrupt_every: int = 0):
        self.topology = topology
        self.network = network or SimNetwork()
        self.compute_params = compute_params or ComputeParams()
        self.checkpoints = checkpoints
        self.interrupt_every = interrupt_every
        self.detector = SafraDetector(topology.machine_count)
        self.tracer = Tracer(clock=lambda: self.network.clock.now,
                             registry=self.network.obs)
        self._h_queue = self.network.obs.histogram("async.slice.queue_depth")
        self._m_updates = self.network.obs.counter("async.updates.total")
        self._m_slices = self.network.obs.counter("async.slice.total")

    def run(self, update_fn, initial_values, frontier,
            max_updates: int = 1_000_000) -> AsyncResult:
        """Process vertices until quiescence (or the update budget).

        ``update_fn(values, vertex, topology) -> iterable[int]`` mutates
        ``values`` for ``vertex`` and returns dense indices to reschedule
        (typically the neighbors whose inputs changed).  A vertex is only
        queued once per pending wake-up, like GraphChi's selective
        scheduling.
        """
        topo = self.topology
        n = topo.n
        if len(initial_values) != n:
            raise ComputeError("initial_values length != vertex count")
        values = list(initial_values)
        queues: list[deque[int]] = [
            deque() for _ in range(topo.machine_count)
        ]
        queued = [False] * n
        for vertex in frontier:
            vertex = int(vertex)
            if not queued[vertex]:
                queued[vertex] = True
                queues[int(topo.machine[vertex])].append(vertex)
        for machine, queue in enumerate(queues):
            self.detector.set_active(machine, bool(queue))

        result = AsyncResult(values=values)
        cost = self.compute_params
        since_interrupt = 0
        while result.updates < max_updates:
            # One "slice": every machine drains a bounded chunk of its
            # queue concurrently; the slice is the unit of simulated
            # parallel time (machines genuinely overlap in the async
            # model, there is just no barrier semantics attached).
            self._h_queue.observe(sum(len(q) for q in queues))
            slice_round = ParallelRound(self.network)
            progressed = False
            slice_updates = 0
            for machine, queue in enumerate(queues):
                budget = min(len(queue), 256,
                             max_updates - result.updates)
                compute_seconds = 0.0
                for _ in range(budget):
                    vertex = queue.popleft()
                    queued[vertex] = False
                    wake = update_fn(values, vertex, topo)
                    result.updates += 1
                    slice_updates += 1
                    since_interrupt += 1
                    progressed = True
                    degree = int(topo.out_indptr[vertex + 1]
                                 - topo.out_indptr[vertex])
                    compute_seconds += (cost.vertex_compute_cost
                                        + cost.cell_access_cost
                                        + degree * cost.edge_scan_cost)
                    for other in wake:
                        other = int(other)
                        other_machine = int(topo.machine[other])
                        if other_machine != machine:
                            result.messages += 1
                            self.detector.record_send(machine)
                            self.detector.record_receive(other_machine)
                            slice_round.add_message(machine, other_machine, 16)
                        if not queued[other]:
                            queued[other] = True
                            queues[other_machine].append(other)
                if compute_seconds:
                    slice_round.add_compute(machine, compute_seconds)
            if progressed:
                with self.tracer.span("async.slice",
                                      updates=slice_updates):
                    result.elapsed += slice_round.finish(
                        parallelism=cost.threads_per_machine
                    )
                self._m_slices.inc()
                self._m_updates.inc(slice_updates)

            # At a slice boundary every machine has finished its job in
            # hand — the state the paper's interruption signal drives the
            # system into.
            for machine in range(topo.machine_count):
                self.detector.set_active(machine, False)

            interrupt_due = (self.interrupt_every
                             and since_interrupt >= self.interrupt_every)
            if interrupt_due and self.detector.probe():
                # System has ceased (no job running, no message in
                # flight): write the snapshot, then resume.
                since_interrupt = 0
                if self.checkpoints is not None:
                    self.checkpoints.save(result.updates, values)
                result.snapshots.append(result.updates)

            if not any(queues):
                result.terminated = self.detector.probe()
                if result.terminated:
                    break
            if not progressed:
                break
        return result
