"""The bulk-synchronous vertex engine (Sections 5.3 and 5.4).

Runs a :class:`~repro.compute.vertex.VertexProgram` over a
:class:`~repro.graph.csr.CsrTopology` in supersteps.  Results are computed
for real; the engine simultaneously charges a simulated clock with what
each superstep would cost on the paper's cluster:

* per machine: vertices processed and adjacency entries scanned, spread
  over the machine's hardware threads;
* per machine pair: the messages crossing that link, packed per the
  network parameters;
* a barrier per superstep.

The **hub-vertex optimisation** of Section 5.4 is implemented in message
accounting: for restrictive programs with uniform messages, a hub vertex's
value is buffered at each destination machine for the whole superstep, so
it crosses each link once instead of once per edge.  (For a scale-free
graph the paper estimates that buffering the top 1% of vertices serves
72.8% of message needs.)

Two execution paths share this accounting:

* the **per-vertex reference path**: a Python loop calling ``compute``
  with ``list`` inboxes — the semantics of record;
* the **vectorized fast path** (programs declaring a ``combiner``):
  inboxes become one dense numpy value array plus a received-mask, folded
  at enqueue time; programs implementing ``compute_batch`` additionally
  run one numpy kernel per machine slice, and machine-pair traffic is
  tallied with ``np.bincount`` instead of per-message dict updates.

Both paths charge the simulated clock identically — same superstep
reports, same network counters — which ``cross_check=True`` verifies by
running the reference path against a throwaway network and comparing.

Superstep semantics are deterministic and order-independent: a vertex
runs in superstep *s* iff it is active at the barrier entering *s*;
message receipt reactivates a vertex *at the barrier* (so a halt and a
wake landing in the same superstep always resolve wake-wins, regardless
of which machine processed first).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError, RecoveryError
from ..faults import FaultInjector, FaultPlan
from ..net.simnet import ParallelRound, SimNetwork
from ..obs import Tracer
from .backend import ExecutionBackend, resolve_backend
from .checkpoint import CheckpointManager
from .vertex import (
    COMBINERS,
    BatchComputeContext,
    ComputeContext,
    VertexProgram,
)


@dataclass(frozen=True)
class SuperstepReport:
    """Accounting for one superstep."""

    superstep: int
    elapsed: float           # simulated seconds
    active_vertices: int     # vertices that ran compute()
    messages: int            # logical messages enqueued
    remote_transfers: int    # messages charged to the wire (after hub opt)
    message_bytes: int       # payload bytes charged to the wire


@dataclass
class BspResult:
    """Outcome of a BSP run.

    ``values`` is a Python list on the reference path and a numpy array
    on the vectorized path; both index by dense vertex id.
    """

    values: object
    supersteps: list[SuperstepReport] = field(default_factory=list)
    aggregators: dict[str, float] = field(default_factory=dict)
    restarts: int = 0
    """Checkpoint-restarts forced by injected machine crashes."""

    @property
    def superstep_count(self) -> int:
        return len(self.supersteps)

    @property
    def elapsed(self) -> float:
        """Total simulated time across all supersteps."""
        return sum(r.elapsed for r in self.supersteps)

    def value_by_node(self, topology) -> dict[int, object]:
        """Map 64-bit node ids to final values."""
        return {
            int(uid): self.values[i]
            for i, uid in enumerate(topology.node_ids)
        }


def _combiner_identity(combiner: str, dtype: np.dtype):
    """The fold identity: what an unreceiving vertex's combined slot
    holds (``sum([]) == 0``; min/max use the dtype's infinities)."""
    if combiner == "sum":
        return dtype.type(0)
    if dtype.kind == "f":
        return dtype.type(np.inf if combiner == "min" else -np.inf)
    info = np.iinfo(dtype)
    return dtype.type(info.max if combiner == "min" else info.min)


class _FastState:
    """Per-topology precomputation for the vectorized path.

    All per-edge arrays are laid out in **processing order** — machine by
    machine, vertices ascending within a machine, edges in CSR slice
    order — the exact order the per-vertex reference path enqueues
    messages.  A ``sum`` combiner folded over these arrays therefore
    reproduces the reference path's float accumulation bit for bit.
    """

    def __init__(self, topology, machine_vertices, hub_threshold: float):
        self.degrees = topology.out_degrees()
        n = topology.n
        self.machines = topology.machine_count
        proc = (np.concatenate(machine_vertices).astype(np.int64)
                if machine_vertices else np.empty(0, dtype=np.int64))
        proc_degrees = self.degrees[proc]
        self.p_indptr = np.zeros(len(proc) + 1, dtype=np.int64)
        np.cumsum(proc_degrees, out=self.p_indptr[1:])
        self.pos_of = np.zeros(n, dtype=np.int64)
        self.pos_of[proc] = np.arange(len(proc), dtype=np.int64)
        total = int(self.p_indptr[-1])
        if total:
            first = np.repeat(topology.out_indptr[proc], proc_degrees)
            offsets = (np.arange(total, dtype=np.int64)
                       - np.repeat(self.p_indptr[:-1], proc_degrees))
            # Global CSR edge index of every edge, in processing order.
            self.edge_pos = first + offsets
        else:
            self.edge_pos = np.empty(0, dtype=np.int64)
        self.edge_dst = topology.out_indices[self.edge_pos]
        edge_src = np.repeat(proc, proc_degrees)
        machine = topology.machine
        self.edge_pair = (machine[edge_src].astype(np.int64) * self.machines
                          + machine[self.edge_dst].astype(np.int64))
        self.is_hub = self.degrees >= hub_threshold
        self._hub_pairs: dict[int, np.ndarray] = {}
        for v in np.nonzero(self.is_hub)[0]:
            pos = int(self.pos_of[v])
            span = slice(self.p_indptr[pos], self.p_indptr[pos + 1])
            self._hub_pairs[int(v)] = np.unique(self.edge_pair[span])

    def hub_pairs(self, vertex: int) -> np.ndarray:
        """Flattened machine-pair indices a hub's buffered value crosses
        (one per distinct destination machine)."""
        return self._hub_pairs[vertex]

    def edge_slice(self, vertices: np.ndarray) -> np.ndarray:
        """Indices (into the processing-order edge arrays) of the
        out-edges of ``vertices``, concatenated per vertex in order."""
        degrees = self.degrees[vertices]
        total = int(degrees.sum())
        if not total:
            return np.empty(0, dtype=np.int64)
        starts = self.p_indptr[self.pos_of[vertices]]
        running = np.cumsum(degrees)
        offsets = (np.arange(total, dtype=np.int64)
                   - np.repeat(running - degrees, degrees))
        return np.repeat(starts, degrees) + offsets


class BspEngine:
    """Executes vertex programs superstep by superstep."""

    def __init__(self, topology, network: SimNetwork | None = None,
                 compute_params: ComputeParams | None = None,
                 hub_buffering: bool = True,
                 hub_fraction: float = 0.01,
                 validate_restrictive: bool = False,
                 vectorize: bool = True,
                 cross_check: bool = False,
                 faults: FaultPlan | None = None,
                 checkpoints: CheckpointManager | None = None,
                 backend: str | ExecutionBackend = "in_process",
                 workers: int | None = None):
        self.topology = topology
        self.network = network or SimNetwork()
        self.compute_params = compute_params or ComputeParams()
        self.hub_buffering = hub_buffering
        self.hub_fraction = hub_fraction
        self.validate_restrictive = validate_restrictive
        self.vectorize = vectorize
        self.cross_check = cross_check
        self.faults = faults
        self.checkpoints = checkpoints
        #: Which ExecutionBackend runs the fast-path kernels:
        #: "in_process" (default) or "shared_memory" (forked workers over
        #: shm-resident state; ``workers`` caps the pool).  The reference
        #: path and non-combiner programs always run in-process.
        self.backend = backend
        self.workers = workers
        self._backend_impl: ExecutionBackend | None = None
        degrees = topology.out_degrees()
        if hub_buffering and len(degrees) and hub_fraction > 0:
            quantile = float(np.quantile(degrees, 1.0 - hub_fraction))
            self.hub_threshold = max(2.0, quantile)
        else:
            self.hub_threshold = float("inf")
        self._machine_vertices = [
            topology.nodes_of_machine(m) for m in range(topology.machine_count)
        ]
        # Spans are stamped with the *simulated* clock, so a superstep
        # span's duration is the simulated seconds the barrier round took.
        self.tracer = Tracer(clock=lambda: self.network.clock.now,
                             registry=self.network.obs)
        self._h_messages = self.network.obs.histogram(
            "bsp.superstep.messages"
        )
        self._h_wall = self.network.obs.histogram(
            "bsp.superstep.wall_seconds"
        )
        self._g_queue = self.network.obs.gauge("bsp.queue.depth")
        self._m_supersteps = self.network.obs.counter("bsp.superstep.total")
        self._m_checkpoints = self.network.obs.counter("bsp.checkpoint.total")
        self._m_restarts = self.network.obs.counter("bsp.restart.total")
        self._injector: FaultInjector | None = None
        # Mutable per-run state (set up in run()).
        self.values = []
        self.aggregators: dict[str, float] = {}
        self.aggregators_next: dict[str, float] = {}
        self._program: VertexProgram | None = None
        self._neighbor_sets: dict[int, set] = {}
        self._fast: _FastState | None = None
        self._fast_mode = False

    # -- engine hooks used by ComputeContext --------------------------------

    def _check_restrictive(self, src: int, dst: int) -> None:
        neighbors = self._neighbor_sets.get(src)
        if neighbors is None:
            neighbors = set(self.topology.out_neighbors(src).tolist())
            self._neighbor_sets[src] = neighbors
        if dst not in neighbors:
            raise ComputeError(
                f"restrictive program sent from {src} to non-neighbor "
                f"{dst}; set restrictive=False for the general model"
            )

    def enqueue(self, src: int, dst: int, value) -> None:
        """Route one message (general-model path)."""
        program = self._program
        assert program is not None
        if program.restrictive and self.validate_restrictive:
            self._check_restrictive(src, dst)
        machine = self.topology.machine
        if self._fast_mode:
            self._fs_single_dst.append(dst)
            self._fs_single_val.append(value)
            self._fs_single_pair.append(
                int(machine[src]) * self._fast.machines + int(machine[dst])
            )
            self._messages += 1
            return
        self._next_inbox[dst].append(value)
        self._woken[dst] = True
        self._messages += 1
        # One dict lookup per message, not two.
        entry = self._traffic[(int(machine[src]), int(machine[dst]))]
        entry[0] += 1
        entry[1] += program.message_bytes

    def enqueue_to_neighbors(self, src: int, value) -> None:
        """Broadcast to out-neighbors (restrictive fast path)."""
        program = self._program
        assert program is not None
        if self._fast_mode:
            degree = int(self._fast.degrees[src])
            if not degree:
                return
            self._fs_bcast_src.append(src)
            self._fs_bcast_val.append(value)
            self._messages += degree
            return
        neighbors = self.topology.out_neighbors(src)
        if not len(neighbors):
            return
        for dst in neighbors:
            self._next_inbox[dst].append(value)
        self._woken[neighbors] = True
        self._messages += len(neighbors)
        src_machine = int(self.topology.machine[src])
        dst_machines = self.topology.machine[neighbors]
        is_hub = (self.hub_buffering and program.uniform_messages
                  and len(neighbors) >= self.hub_threshold)
        if is_hub:
            # The hub's value is shipped once per destination machine and
            # buffered there for the superstep.
            for dst_machine in np.unique(dst_machines):
                entry = self._traffic[(src_machine, int(dst_machine))]
                entry[0] += 1
                entry[1] += program.message_bytes
        else:
            machines, counts = np.unique(dst_machines, return_counts=True)
            for dst_machine, count in zip(machines, counts):
                entry = self._traffic[(src_machine, int(dst_machine))]
                entry[0] += int(count)
                entry[1] += int(count) * program.message_bytes

    def halt(self, vertex: int) -> None:
        self._active[vertex] = False

    # -- engine hooks used by BatchComputeContext ---------------------------

    def halt_many(self, vertices) -> None:
        self._active[np.asarray(vertices, dtype=np.int64)] = False

    def _fold_into(self, dsts: np.ndarray, values: np.ndarray) -> None:
        """Fold per-edge message values into next superstep's combined
        inbox, in the order given (which both send paths keep equal to
        the reference path's enqueue order)."""
        combiner = self._fs_combiner
        target = self._fs_next_combined
        if combiner == "sum":
            if target.dtype.kind == "f":
                # bincount accumulates sequentially in input order: the
                # same left-fold the reference path's sum(messages) does.
                target += np.bincount(dsts, weights=values,
                                      minlength=len(target))
            else:
                np.add.at(target, dsts, values)
        elif combiner == "min":
            np.minimum.at(target, dsts, values)
        else:
            np.maximum.at(target, dsts, values)
        self._fs_next_received[dsts] = True

    def batch_send_uniform(self, vertices, values) -> None:
        """Uniform broadcast for a vertex slice (hub-eligible).

        Deferred until the barrier: all of the superstep's broadcasts
        fold in one pass over the concatenated edge list, so a ``sum``
        combiner left-folds in the exact reference enqueue order (a
        per-call fold would add machine-local partial sums, which is a
        different float association).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if not len(vertices):
            return
        total = int(self._fast.degrees[vertices].sum())
        if not total:
            return
        self._fs_bcast_verts.append(vertices)
        self._fs_bcast_vals.append(np.asarray(values))
        self._messages += total

    def batch_send_edges(self, vertices, edge_values) -> None:
        """Per-edge sends for a vertex slice (non-uniform: no hub opt).

        Deferred like :meth:`batch_send_uniform`.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        edge_values = np.asarray(edge_values)
        total = int(self._fast.degrees[vertices].sum())
        if len(edge_values) != total:
            raise ComputeError(
                f"send_along_edges got {len(edge_values)} values for "
                f"{total} edges"
            )
        if not total:
            return
        self._fs_edge_verts.append(vertices)
        self._fs_edge_vals.append(edge_values)
        self._messages += total

    # -- shared accounting ---------------------------------------------------

    def _charge_round(self, round_: ParallelRound, pair_items):
        """Feed the superstep's traffic (sorted by machine pair, so both
        paths hit the float accumulators in the same order) and finish
        the round.  Returns (elapsed, remote_transfers, wire_bytes)."""
        cost = self.compute_params
        remote_transfers = 0
        wire_bytes = 0
        for (src_machine, dst_machine), (count, size) in pair_items:
            round_.add_message(src_machine, dst_machine, size, count)
            if src_machine != dst_machine:
                remote_transfers += count
                wire_bytes += size
        elapsed = round_.finish(parallelism=cost.threads_per_machine)
        elapsed += cost.barrier_cost
        self.network.clock.advance(cost.barrier_cost)
        return elapsed, remote_transfers, wire_bytes

    def _check_initial_values(self, initial_values, n: int) -> None:
        if initial_values is not None and len(initial_values) != n:
            raise ComputeError(
                f"initial_values has {len(initial_values)} entries "
                f"for {n} vertices"
            )

    # -- checkpoint-restart helpers ------------------------------------------

    def _latest_state(self) -> dict | None:
        """The newest engine-state image, or None (restart from scratch)."""
        if self.checkpoints is None:
            return None
        try:
            _tag, state = self.checkpoints.latest_state()
        except RecoveryError:
            return None
        return state

    def _save_state(self, superstep: int, state: dict) -> None:
        """Checkpoint an engine image if the interval says so."""
        if (self.checkpoints is None
                or (superstep + 1) % self.checkpoints.every):
            return
        state["superstep"] = superstep
        self.checkpoints.save_state(superstep, state)
        self._m_checkpoints.inc()

    # -- main loop ---------------------------------------------------------

    def run(self, program: VertexProgram, max_supersteps: int = 50,
            initial_values=None, on_superstep=None) -> BspResult:
        """Execute ``program`` to quiescence or ``max_supersteps``.

        The engine halts when every vertex has voted to halt and no
        messages are in flight — Pregel-style termination.

        ``on_superstep(superstep, values)``, if given, runs after each
        barrier; the checkpointing of Section 6.2 ("for BSP based
        synchronous computation, we make check points every a few
        supersteps") hooks in here.

        Programs declaring a ``combiner`` run on the vectorized fast
        path when ``vectorize`` is on (the default); with
        ``cross_check=True`` the per-vertex reference path is executed
        as well (against a throwaway network) and any divergence in
        values or accounting raises :class:`ComputeError`.
        """
        if max_supersteps < 1:
            raise ComputeError("max_supersteps must be >= 1")
        combiner = program.combiner
        if combiner is not None and combiner not in COMBINERS:
            raise ComputeError(
                f"unknown combiner {combiner!r}; expected one of {COMBINERS}"
            )
        self._program = program
        self._neighbor_sets = {}
        # A fresh injector per run: crash events re-arm, hash tokens
        # restart, so the same (plan, workload) replays the same faults.
        prior_faults = self.network.faults
        if self.faults is not None:
            self._injector = FaultInjector(self.faults,
                                           registry=self.network.obs)
            self.network.faults = self._injector
        try:
            if not (self.vectorize and combiner is not None
                    and self.topology.n):
                return self._run_reference(program, max_supersteps,
                                           initial_values, on_superstep)
            result = self._run_fast(program, max_supersteps, initial_values,
                                    on_superstep,
                                    use_batch=program.batch_eligible)
            if self.cross_check:
                self._run_cross_check(program, max_supersteps,
                                      initial_values, result)
            return result
        finally:
            self.network.faults = prior_faults
            self._injector = None
            self._program = None
            self._fast_mode = False
            if self._backend_impl is not None:
                self._backend_impl.finish_run(self)

    # -- per-vertex reference path ------------------------------------------

    def _run_reference(self, program: VertexProgram, max_supersteps: int,
                       initial_values, on_superstep) -> BspResult:
        topo = self.topology
        n = topo.n
        self._fast_mode = False
        self._check_initial_values(initial_values, n)
        ctx = ComputeContext(self)

        def fresh_start() -> tuple[int, list]:
            if initial_values is None:
                self.values = [None] * n
            else:
                self.values = list(initial_values)
            self.aggregators = {}
            self.aggregators_next = {}
            self._active = np.ones(n, dtype=bool)
            for vertex in range(n):
                ctx._bind(vertex)
                program.init(ctx, vertex)
            return 0, [[] for _ in range(n)]

        superstep, inbox = fresh_start()
        result = BspResult(values=self.values)
        cost = self.compute_params
        per_vertex_cost = cost.vertex_compute_cost + cost.cell_access_cost
        while superstep < max_supersteps:
            if self._injector is not None:
                if self._injector.take_crashes(superstep):
                    # A machine died entering this superstep: roll back
                    # to the last checkpoint image (or superstep 0) and
                    # replay.  Replayed supersteps recharge the clock —
                    # that is the cost of recovery — but recompute the
                    # same values, so results stay bit-identical.
                    self._m_restarts.inc()
                    result.restarts += 1
                    state = self._latest_state()
                    if state is None:
                        superstep, inbox = fresh_start()
                    else:
                        self.values = state["values"]
                        self.aggregators = state["aggregators"]
                        self.aggregators_next = {}
                        self._active = state["active"]
                        inbox = state["inbox"]
                        superstep = state["superstep"] + 1
                    continue
                self._injector.begin_round(superstep)
            with self._h_wall.time(), \
                    self.tracer.span("bsp.superstep",
                                     superstep=superstep) as span:
                ctx.superstep = superstep
                self._next_inbox = [[] for _ in range(n)]
                self._messages = 0
                self._traffic = defaultdict(lambda: [0, 0])
                self._woken = np.zeros(n, dtype=bool)

                round_ = ParallelRound(self.network)
                ran = 0
                for machine, vertices in enumerate(self._machine_vertices):
                    ran_here = 0
                    degree_sum = 0
                    for vertex in vertices:
                        vertex = int(vertex)
                        messages = inbox[vertex]
                        if not self._active[vertex] and not messages:
                            continue
                        ctx._bind(vertex)
                        program.compute(ctx, vertex, messages)
                        ran_here += 1
                        degree_sum += int(topo.out_indptr[vertex + 1]
                                          - topo.out_indptr[vertex])
                    round_.add_compute(
                        machine,
                        ran_here * per_vertex_cost
                        + degree_sum * cost.edge_scan_cost,
                    )
                    ran += ran_here

                elapsed, remote_transfers, wire_bytes = self._charge_round(
                    round_, sorted(self._traffic.items())
                )
                span.set(active=ran, messages=self._messages,
                         remote_transfers=remote_transfers)
            self._m_supersteps.inc()
            self._h_messages.observe(self._messages)
            # Depth of the inter-superstep message queue about to be
            # consumed by the next barrier.
            self._g_queue.set(self._messages)

            # Barrier wake: message receipt reactivates the destination
            # at the barrier, after all halts — deterministic regardless
            # of machine processing order.
            self._active |= self._woken
            self.aggregators = self.aggregators_next
            self.aggregators_next = {}
            ctx.superstep = superstep
            program.after_superstep(ctx)

            result.supersteps.append(SuperstepReport(
                superstep=superstep,
                elapsed=elapsed,
                active_vertices=ran,
                messages=self._messages,
                remote_transfers=remote_transfers,
                message_bytes=wire_bytes,
            ))
            if on_superstep is not None:
                on_superstep(superstep, self.values)
            self._save_state(superstep, {
                "values": self.values,
                "active": self._active,
                "inbox": self._next_inbox,
                "aggregators": self.aggregators,
            })
            inbox = self._next_inbox
            if self._messages == 0 and not self._active.any():
                break
            superstep += 1

        result.values = self.values
        result.aggregators = dict(self.aggregators)
        return result

    # -- vectorized fast path ------------------------------------------------

    def _flush_broadcasts(self, senders: np.ndarray,
                          values: np.ndarray) -> None:
        """Fold uniform broadcasts (senders in compute order) and charge
        their traffic, applying hub buffering where eligible."""
        fast = self._fast
        program = self._program
        degrees = fast.degrees[senders]
        edge_idx = fast.edge_slice(senders)
        per_edge = np.repeat(values, degrees)
        self._fold_into(fast.edge_dst[edge_idx], per_edge)
        hub_ok = self.hub_buffering and program.uniform_messages
        hub_mask = (fast.is_hub[senders] if hub_ok
                    else np.zeros(len(senders), dtype=bool))
        if hub_mask.any():
            keep = np.repeat(~hub_mask, degrees)
            pairs = fast.edge_pair[edge_idx[keep]]
            for v in senders[hub_mask].tolist():
                self._fs_pair_counts[fast.hub_pairs(v)] += 1
        else:
            pairs = fast.edge_pair[edge_idx]
        if len(pairs):
            self._fs_pair_counts += np.bincount(
                pairs, minlength=len(self._fs_pair_counts)
            )

    def _flush_deferred_sends(self) -> None:
        """Fold the sends collected this superstep, in compute order.

        One fold pass per send kind over the full superstep reproduces
        the reference enqueue order exactly: broadcasts first, then
        per-edge sends, then general-model singles.  (A ``sum`` program
        mixing send kinds in one superstep would see a different — still
        deterministic — float association than the reference path; the
        shipped programs each use a single kind per superstep.)"""
        fast = self._fast
        if self._fs_bcast_src:
            self._flush_broadcasts(
                np.array(self._fs_bcast_src, dtype=np.int64),
                np.asarray(self._fs_bcast_val, dtype=self._fs_dtype),
            )
        if self._fs_bcast_verts:
            self._flush_broadcasts(
                np.concatenate(self._fs_bcast_verts),
                np.concatenate(self._fs_bcast_vals).astype(
                    self._fs_dtype, copy=False
                ),
            )
        if self._fs_edge_verts:
            senders = np.concatenate(self._fs_edge_verts)
            edge_values = np.concatenate(self._fs_edge_vals).astype(
                self._fs_dtype, copy=False
            )
            edge_idx = fast.edge_slice(senders)
            self._fold_into(fast.edge_dst[edge_idx], edge_values)
            self._fs_pair_counts += np.bincount(
                fast.edge_pair[edge_idx],
                minlength=len(self._fs_pair_counts),
            )
        if self._fs_single_dst:
            dsts = np.array(self._fs_single_dst, dtype=np.int64)
            values = np.asarray(self._fs_single_val, dtype=self._fs_dtype)
            self._fold_into(dsts, values)
            self._fs_pair_counts += np.bincount(
                np.array(self._fs_single_pair, dtype=np.int64),
                minlength=len(self._fs_pair_counts),
            )

    def _fs_pair_items(self, message_bytes: int) -> list:
        """The superstep's traffic as sorted ((src, dst), (count, bytes))
        items — the flattened pair index is already lexicographic."""
        machines = self._fast.machines
        items = []
        for pair in np.nonzero(self._fs_pair_counts)[0].tolist():
            count = int(self._fs_pair_counts[pair])
            items.append((divmod(pair, machines),
                          (count, count * message_bytes)))
        return items

    def _reset_send_buffers(self, arrays: bool = True) -> None:
        """Zero the per-superstep message state.

        ``arrays=False`` skips the dense fold targets — backend workers
        only *collect* deferred sends (the coordinator owns the fold), so
        they never touch the combined/received/pair arrays.
        """
        self._messages = 0
        if arrays:
            n = self.topology.n
            self._fs_next_combined = np.full(n, self._fs_identity,
                                             dtype=self._fs_dtype)
            self._fs_next_received = np.zeros(n, dtype=bool)
            self._fs_pair_counts = np.zeros(self._fs_pair_slots,
                                            dtype=np.int64)
        self._fs_bcast_src: list[int] = []
        self._fs_bcast_val: list = []
        self._fs_bcast_verts: list[np.ndarray] = []
        self._fs_bcast_vals: list[np.ndarray] = []
        self._fs_edge_verts: list[np.ndarray] = []
        self._fs_edge_vals: list[np.ndarray] = []
        self._fs_single_dst: list[int] = []
        self._fs_single_val: list = []
        self._fs_single_pair: list[int] = []

    def _compute_machines(self, machines, combined, received,
                          use_batch: bool):
        """Run the fast-path kernels for the given machine ids.

        The unit of work an :class:`ExecutionBackend` distributes: each
        machine's active vertices run ``compute_batch`` (or the
        per-vertex ``compute`` loop), collecting sends into the deferred
        buffers and aggregates/halts/value writes into engine state.
        Returns ``(ran_total, costs)`` with per-machine
        ``(machine, ran_count, degree_sum)`` tuples in iteration order.
        """
        program = self._program
        fast = self._fast
        ctx = self._fs_ctx
        batch_ctx = self._fs_batch_ctx
        ran_total = 0
        costs = []
        for machine in machines:
            vertices = self._machine_vertices[machine]
            ran = vertices[self._active[vertices]]
            ran_count = len(ran)
            degree_sum = 0
            if ran_count:
                if use_batch:
                    program.compute_batch(batch_ctx, ran, combined[ran],
                                          received[ran])
                else:
                    for vertex in ran.tolist():
                        ctx._bind(vertex)
                        messages = ([combined[vertex]]
                                    if received[vertex] else [])
                        program.compute(ctx, vertex, messages)
                degree_sum = int(fast.degrees[ran].sum())
            costs.append((machine, ran_count, degree_sum))
            ran_total += ran_count
        return ran_total, costs

    def _run_fast(self, program: VertexProgram, max_supersteps: int,
                  initial_values, on_superstep, use_batch: bool) -> BspResult:
        topo = self.topology
        n = topo.n
        cost = self.compute_params
        if self._fast is None:
            self._fast = _FastState(topo, self._machine_vertices,
                                    self.hub_threshold)
        fast = self._fast
        dtype = np.dtype(program.value_dtype)
        identity = _combiner_identity(program.combiner, dtype)
        self._fast_mode = True
        self._fs_combiner = program.combiner
        self._fs_dtype = dtype
        self._fs_identity = identity
        self._fs_pair_slots = fast.machines * fast.machines
        self._check_initial_values(initial_values, n)
        ctx = ComputeContext(self)
        batch_ctx = BatchComputeContext(self)
        self._fs_ctx = ctx
        self._fs_batch_ctx = batch_ctx
        if self._backend_impl is None:
            self._backend_impl = resolve_backend(self.backend, self.workers)
        backend = self._backend_impl
        backend.prepare_run(self, program, use_batch)

        def fresh_start() -> tuple[int, np.ndarray, np.ndarray]:
            if initial_values is None:
                self.values = np.zeros(n, dtype=dtype)
            else:
                self.values = np.array(initial_values, dtype=dtype)
            self.aggregators = {}
            self.aggregators_next = {}
            self._active = np.ones(n, dtype=bool)
            if type(program).init_batch is not VertexProgram.init_batch:
                program.init_batch(batch_ctx)
            else:
                for vertex in range(n):
                    ctx._bind(vertex)
                    program.init(ctx, vertex)
            # Shared backends re-home the dense state so forked workers
            # read and write it through the same physical pages.
            self.values = backend.bind_values(self.values)
            self._active = backend.bind_active(self._active)
            return (0, np.full(n, identity, dtype=dtype),
                    np.zeros(n, dtype=bool))

        superstep, combined, received = fresh_start()
        result = BspResult(values=self.values)
        per_vertex_cost = cost.vertex_compute_cost + cost.cell_access_cost
        while superstep < max_supersteps:
            if self._injector is not None:
                if self._injector.take_crashes(superstep):
                    # Same rollback-and-replay as the reference path; the
                    # pickled image round-trips the numpy arrays exactly.
                    self._m_restarts.inc()
                    result.restarts += 1
                    state = self._latest_state()
                    if state is None:
                        superstep, combined, received = fresh_start()
                    else:
                        self.values = backend.bind_values(state["values"])
                        self.aggregators = state["aggregators"]
                        self.aggregators_next = {}
                        self._active = backend.bind_active(state["active"])
                        combined = state["combined"]
                        received = state["received"]
                        superstep = state["superstep"] + 1
                    # Workers restart too: the pool is torn down and
                    # re-forked from the rolled-back image, proving the
                    # fault plan replays identically under real workers.
                    backend.on_restart(self)
                    continue
                self._injector.begin_round(superstep)
            with self._h_wall.time(), \
                    self.tracer.span("bsp.superstep",
                                     superstep=superstep) as span:
                ctx.superstep = superstep
                batch_ctx.superstep = superstep
                round_ = ParallelRound(self.network)
                ran_total, machine_costs = backend.run_superstep(
                    self, superstep, combined, received
                )
                for machine, ran_count, degree_sum in machine_costs:
                    round_.add_compute(
                        machine,
                        ran_count * per_vertex_cost
                        + degree_sum * cost.edge_scan_cost,
                    )
                elapsed, remote_transfers, wire_bytes = self._charge_round(
                    round_, self._fs_pair_items(program.message_bytes)
                )
                span.set(active=ran_total, messages=self._messages,
                         remote_transfers=remote_transfers)
            self._m_supersteps.inc()
            self._h_messages.observe(self._messages)
            self._g_queue.set(self._messages)

            self._active |= self._fs_next_received
            self.aggregators = self.aggregators_next
            self.aggregators_next = {}
            program.after_superstep(batch_ctx if use_batch else ctx)

            result.supersteps.append(SuperstepReport(
                superstep=superstep,
                elapsed=elapsed,
                active_vertices=ran_total,
                messages=self._messages,
                remote_transfers=remote_transfers,
                message_bytes=wire_bytes,
            ))
            if on_superstep is not None:
                on_superstep(superstep, self.values)
            self._save_state(superstep, {
                "values": self.values,
                "active": self._active,
                "combined": self._fs_next_combined,
                "received": self._fs_next_received,
                "aggregators": self.aggregators,
            })
            combined = self._fs_next_combined
            received = self._fs_next_received
            if self._messages == 0 and not self._active.any():
                break
            superstep += 1

        # Detach results (and the engine's own arrays) from any
        # backend-owned shared storage before the segments go away.
        self.values = backend.materialize(self.values)
        self._active = backend.materialize(self._active)
        result.values = self.values
        result.aggregators = dict(self.aggregators)
        return result

    # -- cross-check ---------------------------------------------------------

    def _run_cross_check(self, program: VertexProgram, max_supersteps: int,
                         initial_values, fast_result: BspResult) -> None:
        """Run the per-vertex reference path against a throwaway network
        and require value-identical results and identical accounting."""
        from ..obs import MetricsRegistry
        from ..tfs import TrinityFileSystem

        # The reference run must replay the same chaos: same fault plan
        # (a fresh injector draws the same seeded faults) and an
        # equivalent checkpoint cadence on a throwaway TFS, so crashes
        # roll back and recharge identically on both paths.
        reference_checkpoints = None
        if self.checkpoints is not None:
            reference_checkpoints = CheckpointManager(
                TrinityFileSystem(),
                job=self.checkpoints.job,
                every=self.checkpoints.every,
            )
        reference_engine = BspEngine(
            self.topology,
            network=SimNetwork(params=self.network.params,
                               registry=MetricsRegistry()),
            compute_params=self.compute_params,
            hub_buffering=self.hub_buffering,
            hub_fraction=self.hub_fraction,
            validate_restrictive=self.validate_restrictive,
            vectorize=False,
            faults=self.faults,
            checkpoints=reference_checkpoints,
        )
        reference = reference_engine.run(program,
                                         max_supersteps=max_supersteps,
                                         initial_values=initial_values)
        fast_values = np.asarray(fast_result.values)
        try:
            reference_values = np.asarray(reference.values,
                                          dtype=fast_values.dtype)
        except (TypeError, ValueError) as exc:
            raise ComputeError(
                "cross-check failed: the reference path left non-numeric "
                "vertex values (a combiner program must initialise every "
                "vertex in init/init_batch; the dense fast-path array "
                "defaults untouched vertices to zero, the reference path "
                "to None)"
            ) from exc
        if not np.array_equal(reference_values, fast_values):
            diverged = int(np.sum(reference_values != fast_values))
            raise ComputeError(
                f"cross-check failed: vectorized values diverge from the "
                f"per-vertex reference at {diverged} of "
                f"{len(fast_values)} vertices"
            )
        if reference.superstep_count != fast_result.superstep_count:
            raise ComputeError(
                f"cross-check failed: {fast_result.superstep_count} "
                f"vectorized supersteps vs {reference.superstep_count} "
                f"reference supersteps"
            )
        if reference.restarts != fast_result.restarts:
            raise ComputeError(
                f"cross-check failed: {fast_result.restarts} vectorized "
                f"checkpoint-restarts vs {reference.restarts} reference"
            )
        for fast_step, ref_step in zip(fast_result.supersteps,
                                       reference.supersteps):
            if fast_step != ref_step:
                raise ComputeError(
                    f"cross-check failed at superstep "
                    f"{ref_step.superstep}: vectorized {fast_step} vs "
                    f"reference {ref_step}"
                )
