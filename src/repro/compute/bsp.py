"""The bulk-synchronous vertex engine (Sections 5.3 and 5.4).

Runs a :class:`~repro.compute.vertex.VertexProgram` over a
:class:`~repro.graph.csr.CsrTopology` in supersteps.  Results are computed
for real; the engine simultaneously charges a simulated clock with what
each superstep would cost on the paper's cluster:

* per machine: vertices processed and adjacency entries scanned, spread
  over the machine's hardware threads;
* per machine pair: the messages crossing that link, packed per the
  network parameters;
* a barrier per superstep.

The **hub-vertex optimisation** of Section 5.4 is implemented in message
accounting: for restrictive programs with uniform messages, a hub vertex's
value is buffered at each destination machine for the whole superstep, so
it crosses each link once instead of once per edge.  (For a scale-free
graph the paper estimates that buffering the top 1% of vertices serves
72.8% of message needs.)
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..config import ComputeParams
from ..errors import ComputeError
from ..net.simnet import ParallelRound, SimNetwork
from ..obs import Tracer
from .vertex import ComputeContext, VertexProgram


@dataclass(frozen=True)
class SuperstepReport:
    """Accounting for one superstep."""

    superstep: int
    elapsed: float           # simulated seconds
    active_vertices: int     # vertices that ran compute()
    messages: int            # logical messages enqueued
    remote_transfers: int    # messages charged to the wire (after hub opt)
    message_bytes: int       # payload bytes charged to the wire


@dataclass
class BspResult:
    """Outcome of a BSP run."""

    values: list
    supersteps: list[SuperstepReport] = field(default_factory=list)
    aggregators: dict[str, float] = field(default_factory=dict)

    @property
    def superstep_count(self) -> int:
        return len(self.supersteps)

    @property
    def elapsed(self) -> float:
        """Total simulated time across all supersteps."""
        return sum(r.elapsed for r in self.supersteps)

    def value_by_node(self, topology) -> dict[int, object]:
        """Map 64-bit node ids to final values."""
        return {
            int(uid): self.values[i]
            for i, uid in enumerate(topology.node_ids)
        }


class BspEngine:
    """Executes vertex programs superstep by superstep."""

    def __init__(self, topology, network: SimNetwork | None = None,
                 compute_params: ComputeParams | None = None,
                 hub_buffering: bool = True,
                 hub_fraction: float = 0.01,
                 validate_restrictive: bool = False):
        self.topology = topology
        self.network = network or SimNetwork()
        self.compute_params = compute_params or ComputeParams()
        self.hub_buffering = hub_buffering
        self.validate_restrictive = validate_restrictive
        degrees = topology.out_degrees()
        if hub_buffering and len(degrees) and hub_fraction > 0:
            quantile = float(np.quantile(degrees, 1.0 - hub_fraction))
            self.hub_threshold = max(2.0, quantile)
        else:
            self.hub_threshold = float("inf")
        self._machine_vertices = [
            topology.nodes_of_machine(m) for m in range(topology.machine_count)
        ]
        # Spans are stamped with the *simulated* clock, so a superstep
        # span's duration is the simulated seconds the barrier round took.
        self.tracer = Tracer(clock=lambda: self.network.clock.now,
                             registry=self.network.obs)
        self._h_messages = self.network.obs.histogram(
            "bsp.superstep.messages"
        )
        self._g_queue = self.network.obs.gauge("bsp.queue.depth")
        self._m_supersteps = self.network.obs.counter("bsp.superstep.total")
        # Mutable per-run state (set up in run()).
        self.values: list = []
        self.aggregators: dict[str, float] = {}
        self.aggregators_next: dict[str, float] = {}
        self._program: VertexProgram | None = None
        self._neighbor_sets: dict[int, set] = {}

    # -- engine hooks used by ComputeContext --------------------------------

    def enqueue(self, src: int, dst: int, value) -> None:
        """Route one message (general-model path)."""
        program = self._program
        assert program is not None
        if program.restrictive and self.validate_restrictive:
            neighbors = self._neighbor_sets.get(src)
            if neighbors is None:
                neighbors = set(self.topology.out_neighbors(src).tolist())
                self._neighbor_sets[src] = neighbors
            if dst not in neighbors:
                raise ComputeError(
                    f"restrictive program sent from {src} to non-neighbor "
                    f"{dst}; set restrictive=False for the general model"
                )
        self._next_inbox[dst].append(value)
        self._active[dst] = True
        self._messages += 1
        src_machine = int(self.topology.machine[src])
        dst_machine = int(self.topology.machine[dst])
        self._traffic[(src_machine, dst_machine)][0] += 1
        self._traffic[(src_machine, dst_machine)][1] += program.message_bytes

    def enqueue_to_neighbors(self, src: int, value) -> None:
        """Broadcast to out-neighbors (restrictive fast path)."""
        program = self._program
        assert program is not None
        neighbors = self.topology.out_neighbors(src)
        if not len(neighbors):
            return
        for dst in neighbors:
            self._next_inbox[dst].append(value)
        self._active[neighbors] = True
        self._messages += len(neighbors)
        src_machine = int(self.topology.machine[src])
        dst_machines = self.topology.machine[neighbors]
        is_hub = (self.hub_buffering and program.uniform_messages
                  and len(neighbors) >= self.hub_threshold)
        if is_hub:
            # The hub's value is shipped once per destination machine and
            # buffered there for the superstep.
            for dst_machine in np.unique(dst_machines):
                entry = self._traffic[(src_machine, int(dst_machine))]
                entry[0] += 1
                entry[1] += program.message_bytes
        else:
            machines, counts = np.unique(dst_machines, return_counts=True)
            for dst_machine, count in zip(machines, counts):
                entry = self._traffic[(src_machine, int(dst_machine))]
                entry[0] += int(count)
                entry[1] += int(count) * program.message_bytes

    def halt(self, vertex: int) -> None:
        self._active[vertex] = False

    # -- main loop ---------------------------------------------------------

    def run(self, program: VertexProgram, max_supersteps: int = 50,
            initial_values=None, on_superstep=None) -> BspResult:
        """Execute ``program`` to quiescence or ``max_supersteps``.

        The engine halts when every vertex has voted to halt and no
        messages are in flight — Pregel-style termination.

        ``on_superstep(superstep, values)``, if given, runs after each
        barrier; the checkpointing of Section 6.2 ("for BSP based
        synchronous computation, we make check points every a few
        supersteps") hooks in here.
        """
        if max_supersteps < 1:
            raise ComputeError("max_supersteps must be >= 1")
        topo = self.topology
        n = topo.n
        self._program = program
        self._neighbor_sets = {}
        if initial_values is None:
            self.values = [None] * n
        else:
            if len(initial_values) != n:
                raise ComputeError(
                    f"initial_values has {len(initial_values)} entries "
                    f"for {n} vertices"
                )
            self.values = list(initial_values)
        self.aggregators = {}
        self.aggregators_next = {}
        self._active = np.ones(n, dtype=bool)
        inbox: list[list] = [[] for _ in range(n)]
        ctx = ComputeContext(self)

        for vertex in range(n):
            ctx._bind(vertex)
            program.init(ctx, vertex)

        result = BspResult(values=self.values)
        cost = self.compute_params
        for superstep in range(max_supersteps):
            with self.tracer.span("bsp.superstep",
                                  superstep=superstep) as span:
                ctx.superstep = superstep
                self._next_inbox = [[] for _ in range(n)]
                self._messages = 0
                self._traffic = defaultdict(lambda: [0, 0])
                traffic = self._traffic

                round_ = ParallelRound(self.network)
                ran = 0
                for machine, vertices in enumerate(self._machine_vertices):
                    compute_seconds = 0.0
                    for vertex in vertices:
                        vertex = int(vertex)
                        messages = inbox[vertex]
                        if not self._active[vertex] and not messages:
                            continue
                        ctx._bind(vertex)
                        program.compute(ctx, vertex, messages)
                        ran += 1
                        degree = int(topo.out_indptr[vertex + 1]
                                     - topo.out_indptr[vertex])
                        compute_seconds += (
                            cost.vertex_compute_cost + cost.cell_access_cost
                            + degree * cost.edge_scan_cost
                        )
                    round_.add_compute(machine, compute_seconds)

                remote_transfers = 0
                wire_bytes = 0
                for (src_machine, dst_machine), (count, size) \
                        in traffic.items():
                    round_.add_message(src_machine, dst_machine, size, count)
                    if src_machine != dst_machine:
                        remote_transfers += count
                        wire_bytes += size
                elapsed = round_.finish(parallelism=cost.threads_per_machine)
                elapsed += cost.barrier_cost
                self.network.clock.advance(cost.barrier_cost)
                span.set(active=ran, messages=self._messages,
                         remote_transfers=remote_transfers)
            self._m_supersteps.inc()
            self._h_messages.observe(self._messages)
            # Depth of the inter-superstep message queue about to be
            # consumed by the next barrier.
            self._g_queue.set(self._messages)

            self.aggregators = self.aggregators_next
            self.aggregators_next = {}
            ctx.superstep = superstep
            program.after_superstep(ctx)

            result.supersteps.append(SuperstepReport(
                superstep=superstep,
                elapsed=elapsed,
                active_vertices=ran,
                messages=self._messages,
                remote_transfers=remote_transfers,
                message_bytes=wire_bytes,
            ))
            if on_superstep is not None:
                on_superstep(superstep, self.values)
            inbox = self._next_inbox
            if self._messages == 0 and not self._active.any():
                break

        result.values = self.values
        result.aggregators = dict(self.aggregators)
        self._program = None
        return result
