"""Safra's distributed termination-detection algorithm (Section 6.2).

For asynchronous computation Trinity cannot checkpoint at barriers —
there are none.  Instead it periodically interrupts all vertices and
"calls Safra's termination detection algorithm to check whether the system
ceases"; only then is a snapshot written.

Safra's algorithm (Dijkstra's note EWD 998, cited by the paper):

* Machines form a logical ring.  Each machine keeps a message *counter*
  (sends minus receives) and a *colour* (a machine turns black when it
  receives a message).
* Machine 0 starts a probe by sending a white token with count 0 around
  the ring.  Each machine forwards the token only when it is passive,
  adding its counter; a black machine blackens the token and whitens
  itself.
* When the token returns to machine 0: if the token and machine 0 are
  white and token count + machine 0's counter is zero, the computation
  has terminated; otherwise a new probe starts.

The invariants ("never declare termination while a message is in flight")
are exercised property-style in the test suite.
"""

from __future__ import annotations

from ..errors import ComputeError

WHITE = "white"
BLACK = "black"


class SafraDetector:
    """Tracks message counts/colours for a ring of machines and runs
    token probes on demand.

    The host (the async engine) reports sends, receives and activity;
    :meth:`probe` circulates the token and returns True exactly when
    Safra's predicate certifies global termination.
    """

    def __init__(self, machines: int):
        if machines < 1:
            raise ComputeError("need at least one machine")
        self.machines = machines
        self._counter = [0] * machines
        self._colour = [WHITE] * machines
        self._active = [False] * machines
        self.probes = 0

    # -- events reported by the computation ----------------------------------

    def record_send(self, machine: int) -> None:
        self._counter[machine] += 1

    def record_receive(self, machine: int) -> None:
        self._counter[machine] -= 1
        self._colour[machine] = BLACK
        self._active[machine] = True

    def set_active(self, machine: int, active: bool) -> None:
        """A machine is active while it has local work queued."""
        self._active[machine] = active

    @property
    def any_active(self) -> bool:
        return any(self._active)

    @property
    def in_flight(self) -> int:
        """Messages sent but not yet received (ground truth, for tests)."""
        return sum(self._counter)

    # -- the probe -------------------------------------------------------

    def probe(self) -> bool:
        """Circulate the token once; True iff termination is certified.

        A probe only makes sense between interruptions, when machines
        forward the token as they become passive; an active machine simply
        delays its hop, which in this in-process setting means the probe
        reports not-terminated.
        """
        self.probes += 1
        if self.any_active:
            # Some machine would hold the token; the initiator times out.
            return False
        token_count = 0
        token_colour = WHITE
        # Token travels 0 -> m-1 -> ... -> 1 -> 0 (direction is arbitrary
        # but fixed); each passive machine adds its counter and whitens.
        for machine in range(self.machines - 1, -1, -1):
            token_count += self._counter[machine]
            if self._colour[machine] == BLACK:
                token_colour = BLACK
                self._colour[machine] = WHITE
        terminated = token_colour == WHITE and token_count == 0
        return terminated
