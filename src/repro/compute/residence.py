"""Type A / Type B memory residence for offline analytics (Section 5.4).

Because the offline access pattern is predictable (execution proceeds
partition by partition, in the same order every iteration), Trinity keeps
only the scheduled partition's vertices fully resident:

* **Type A** (currently scheduled): full cell — UID, neighbors,
  attributes, local variables, message box.
* **Type B** (everything else): only UID and message box, since Type A
  vertices may read their messages.

The paper's formulas, reproduced by :class:`MemoryResidenceModel`::

    S  = V * (16 + k + l + m) + 8 * E          (online / all-resident)
    S' = p * S + (1 - p) * V * (16 + m)        (offline, fraction p Type A)
    saved = (1 - p) * (k + l) * V + (1 - p) * 8 * E

with k, l, m the average attribute, local-variable and message sizes, and
16 bytes for storing/accessing the UID.  With k = l = m = 8 and p = 0.1
the paper computes 78 GB saved for a Facebook-scale graph — the
``test_sec54_memory_model`` benchmark reproduces that number exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ComputeError


@dataclass(frozen=True)
class MemoryResidenceModel:
    """The analytic memory model with the paper's parameter names."""

    k: float = 8.0   # average attribute bytes per vertex
    l: float = 8.0   # average local-variable bytes per vertex
    m: float = 8.0   # average message bytes per vertex
    uid_bytes: float = 16.0
    edge_bytes: float = 8.0

    def online_bytes(self, vertices: int, edges: int) -> float:
        """S: memory to keep the whole graph resident (online mode)."""
        return (vertices * (self.uid_bytes + self.k + self.l + self.m)
                + self.edge_bytes * edges)

    def offline_bytes(self, vertices: int, edges: int,
                      type_a_fraction: float) -> float:
        """S': memory in offline mode with fraction ``p`` Type A."""
        p = self._check_fraction(type_a_fraction)
        full = self.online_bytes(vertices, edges)
        return p * full + (1 - p) * vertices * (self.uid_bytes + self.m)

    def saved_bytes(self, vertices: int, edges: int,
                    type_a_fraction: float) -> float:
        """S - S': the paper's headline savings formula."""
        p = self._check_fraction(type_a_fraction)
        return ((1 - p) * (self.k + self.l) * vertices
                + (1 - p) * self.edge_bytes * edges)

    @staticmethod
    def _check_fraction(p: float) -> float:
        if not 0.0 <= p <= 1.0:
            raise ComputeError(f"type_a_fraction must be in [0, 1], got {p}")
        return p


@dataclass
class ResidencePlan:
    """A concrete Type A/B split for one machine and one scheduled
    partition, with *measured* byte counts from the actual topology."""

    machine: int
    type_a: np.ndarray          # dense indices, fully resident
    type_b: np.ndarray          # dense indices, message box only
    type_a_bytes: int
    type_b_bytes: int

    @property
    def resident_bytes(self) -> int:
        return self.type_a_bytes + self.type_b_bytes

    @property
    def type_a_fraction(self) -> float:
        total = len(self.type_a) + len(self.type_b)
        return len(self.type_a) / total if total else 0.0


def plan_residence(topology, machine: int, scheduled_partition: np.ndarray,
                   model: MemoryResidenceModel | None = None) -> ResidencePlan:
    """Split one machine's vertices into Type A/B for a scheduled partition
    and price both classes with the analytic model (Figure 10)."""
    model = model or MemoryResidenceModel()
    local = topology.nodes_of_machine(machine)
    scheduled = set(int(v) for v in scheduled_partition)
    is_a = np.fromiter(
        (int(v) in scheduled for v in local), dtype=bool, count=len(local)
    )
    type_a = local[is_a]
    type_b = local[~is_a]
    degrees = topology.out_indptr[local + 1] - topology.out_indptr[local]
    a_bytes = int(
        len(type_a) * (model.uid_bytes + model.k + model.l + model.m)
        + model.edge_bytes * degrees[is_a].sum()
    )
    b_bytes = int(len(type_b) * (model.uid_bytes + model.m))
    return ResidencePlan(machine, type_a, type_b, a_bytes, b_bytes)
