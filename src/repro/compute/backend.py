"""Execution backends: who runs the superstep kernels.

The BSP engine's main loop is a *coordinator*: it owns the simulated
clock, the fault injector, checkpoints, traffic charging, and the
barrier.  What happens *between* barriers — running the vertex kernels
over each machine's slice — is delegated to an :class:`ExecutionBackend`:

* :class:`InProcessBackend` (default): the kernels run inline in the
  coordinator process, machine by machine — semantically exactly the
  engine's historical behaviour.
* :class:`~repro.compute.shm.SharedMemoryBackend`: the kernels run in
  forked worker processes on real cores, reading and writing engine
  state through OS shared memory.

The seam is drawn so that everything order- or float-sensitive stays on
the coordinator: workers return *what they would have sent* (the
deferred send buffers, per-machine compute counts, an ordered aggregate
log) and the coordinator folds, charges, and advances the simulated
clock exactly as the in-process path does.  That is what makes the
parallel backend bit-identical rather than merely statistically
equivalent — ``cross_check=True`` holds under every backend.
"""

from __future__ import annotations

from ..errors import ComputeError


class ExecutionBackend:
    """Strategy interface for running fast-path superstep kernels.

    Lifecycle per :meth:`BspEngine.run`: ``prepare_run`` once, then
    ``bind_values``/``bind_active`` after every (re)initialisation of
    the dense state arrays, ``run_superstep`` once per superstep,
    ``on_restart`` after a fault rollback, and ``finish_run`` in the
    engine's ``finally``.
    """

    name = "in_process"

    def prepare_run(self, engine, program, use_batch: bool) -> None:
        self._use_batch = use_batch

    def bind_values(self, values):
        """Adopt the dense value array (shared backends re-home it)."""
        return values

    def bind_active(self, active):
        """Adopt the active mask (shared backends re-home it)."""
        return active

    def run_superstep(self, engine, superstep: int, combined, received):
        """Run every machine's kernels for one superstep.

        On return the engine's deferred sends must be flushed — i.e.
        ``_fs_next_combined`` / ``_fs_next_received`` / ``_fs_pair_counts``
        and ``_messages`` hold the superstep's folded outcome.  Returns
        ``(ran_total, costs)`` where ``costs`` is a per-machine
        ``(machine, ran_count, degree_sum)`` list in ascending machine
        order — the coordinator charges the simulated clock from it.
        """
        raise NotImplementedError

    def on_restart(self, engine) -> None:
        """A fault rolled the engine back; reset any worker state."""

    def materialize(self, values):
        """Detach a result array from backend-owned storage."""
        return values

    def finish_run(self, engine) -> None:
        """Tear down per-run resources (workers, shared segments)."""


class InProcessBackend(ExecutionBackend):
    """The historical single-process path: kernels run inline."""

    name = "in_process"

    def run_superstep(self, engine, superstep: int, combined, received):
        engine._reset_send_buffers()
        ran_total, costs = engine._compute_machines(
            range(engine.topology.machine_count), combined, received,
            self._use_batch,
        )
        engine._flush_deferred_sends()
        return ran_total, costs


def resolve_backend(spec, workers: int | None = None) -> ExecutionBackend:
    """Turn a backend spec (name or instance) into an instance.

    ``workers`` only applies to ``"shared_memory"``; ``None`` lets the
    backend pick (capped at the machine count and available cores).
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec in (None, "in_process"):
        return InProcessBackend()
    if spec == "shared_memory":
        from .shm import SharedMemoryBackend
        return SharedMemoryBackend(workers=workers)
    raise ComputeError(
        f"unknown execution backend {spec!r}; expected 'in_process', "
        f"'shared_memory', or an ExecutionBackend instance"
    )
