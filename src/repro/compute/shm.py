"""Shared-memory execution backend: real processes, simulated clock.

:class:`SharedMemoryBackend` fans each superstep's kernels out to forked
worker processes.  The dense engine state — vertex values and the active
mask — lives in ``multiprocessing.shared_memory`` segments, so workers
write their (disjoint) machine slices directly and the coordinator sees
the result without any copy.  The per-superstep message inputs
(``combined``/``received``) are coordinator-copied into two more shared
arrays before the step fans out.

What workers do NOT do is fold.  Deferred sends, aggregate
contributions, and traffic pair counts are all order- and
float-association-sensitive: a per-worker partial fold would combine as
``A + (c1 + c2)`` where the in-process path computes ``(A + c1) + c2``,
which is a different float result.  So each worker ships back *what it
collected* — its deferred send buffers, an ordered ``(name, value)``
aggregate log, per-machine compute counts, and a metrics delta — and the
coordinator concatenates them in worker order (= ascending machine
order, because workers own contiguous machine blocks) and runs the
single-process fold (:meth:`BspEngine._flush_deferred_sends`) itself.
The fold sequence is therefore *identical* to the in-process backend's,
which is what lets ``cross_check=True`` hold bit-for-bit.

The simulated clock stays authoritative: workers never touch the
network; the coordinator charges ``ParallelRound`` from the integer
``(machine, ran_count, degree_sum)`` tuples the workers report, exactly
as the in-process path does.

Workers are forked lazily at the first superstep (after the dense state
is bound into shared memory) and inherit everything — engine, topology,
program, shared mappings — through ``fork``; nothing is pickled at spawn
time.  A fault-injected rollback tears the pool down
(:meth:`on_restart`) and re-forks from the rolled-back image, so the
fault plan replays deterministically under real workers too.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback

import numpy as np

from ..errors import ComputeError
from ..memcloud.arena import SharedMemoryArena
from .backend import ExecutionBackend

_FORK = multiprocessing.get_context("fork")


def _worker_main(backend, engine, machines, use_batch, conn) -> None:
    """Worker loop: run kernels for a machine block, ship collections.

    Runs in a forked child.  ``engine.values`` / ``engine._active`` are
    shared-memory views inherited from the coordinator, so value writes
    and halts land in the coordinator's pages; everything else the
    kernels produce is collected locally and shipped over the pipe.
    """
    obs = engine.network.obs
    agg_log: list = []

    def aggregate(name: str, value: float) -> None:
        # Order-preserving capture; the coordinator replays the log so
        # same-name contributions left-fold in the exact sequence the
        # in-process path would have used.
        agg_log.append((name, value))

    engine._fs_ctx.aggregate = aggregate
    engine._fs_batch_ctx.aggregate = aggregate
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, superstep, aggregators = msg
        try:
            engine.aggregators = aggregators
            engine.aggregators_next = {}
            engine._fs_ctx.superstep = superstep
            engine._fs_batch_ctx.superstep = superstep
            agg_log.clear()
            engine._reset_send_buffers(arrays=False)
            baseline = obs.capture_state()
            ran, costs = engine._compute_machines(
                machines, backend._sh_combined, backend._sh_received,
                use_batch,
            )
            conn.send(("ok", {
                "ran": ran,
                "costs": costs,
                "messages": engine._messages,
                "sends": (
                    engine._fs_bcast_src, engine._fs_bcast_val,
                    engine._fs_bcast_verts, engine._fs_bcast_vals,
                    engine._fs_edge_verts, engine._fs_edge_vals,
                    engine._fs_single_dst, engine._fs_single_val,
                    engine._fs_single_pair,
                ),
                "agg_log": list(agg_log),
                "metrics": obs.delta_since(baseline),
            }))
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    conn.close()
    # Skip interpreter teardown: inherited finalizers (checkpoint
    # managers, arena finalizers) belong to the coordinator.
    os._exit(0)


class SharedMemoryBackend(ExecutionBackend):
    """Run superstep kernels in forked workers over OS shared memory."""

    name = "shared_memory"

    def __init__(self, workers: int | None = None):
        self.requested_workers = workers
        self.worker_count = 0
        self._procs: list = []
        self._conns: list = []
        self._blocks: list = []
        self._arenas: list = []
        self._sh_values = None
        self._sh_active = None
        self._sh_combined = None
        self._sh_received = None

    # -- arena plumbing ------------------------------------------------------

    def _alloc(self, n: int, dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        arena = SharedMemoryArena(max(1, n * dtype.itemsize))
        self._arenas.append(arena)
        return np.ndarray((n,), dtype=dtype, buffer=arena.buf)

    # -- lifecycle -----------------------------------------------------------

    def prepare_run(self, engine, program, use_batch: bool) -> None:
        super().prepare_run(engine, program, use_batch)
        machine_count = engine.topology.machine_count
        requested = (self.requested_workers
                     or os.cpu_count() or 1)
        self.worker_count = max(1, min(requested, machine_count))
        # Plain-int machine ids: numpy ints would leak into the round's
        # load keys and the fault plan's repr-hashed draw coordinates,
        # where repr(np.int64(0)) != repr(0) changes every fault draw.
        self._blocks = [
            [int(machine) for machine in block] for block in
            np.array_split(np.arange(machine_count), self.worker_count)
            if len(block)
        ]
        n = engine.topology.n
        dtype = engine._fs_dtype
        self._sh_values = self._alloc(n, dtype)
        self._sh_active = self._alloc(n, bool)
        self._sh_combined = self._alloc(n, dtype)
        self._sh_received = self._alloc(n, bool)

    def bind_values(self, values):
        self._sh_values[:] = values
        return self._sh_values

    def bind_active(self, active):
        self._sh_active[:] = active
        return self._sh_active

    def _ensure_pool(self, engine) -> None:
        if self._procs:
            return
        for block in self._blocks:
            parent, child = _FORK.Pipe()
            proc = _FORK.Process(
                target=_worker_main,
                args=(self, engine, block, self._use_batch, child),
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)

    def run_superstep(self, engine, superstep: int, combined, received):
        self._ensure_pool(engine)
        np.copyto(self._sh_combined, combined)
        np.copyto(self._sh_received, received)
        for conn in self._conns:
            conn.send(("step", superstep, engine.aggregators))
        engine._reset_send_buffers()
        ran_total = 0
        costs: list = []
        for worker_id, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                self._shutdown_pool(graceful=False)
                raise ComputeError(
                    f"shared-memory worker {worker_id} died mid-superstep"
                ) from exc
            if status != "ok":
                self._shutdown_pool(graceful=False)
                raise ComputeError(
                    f"shared-memory worker {worker_id} failed:\n{payload}"
                )
            ran_total += payload["ran"]
            costs.extend(payload["costs"])
            engine._messages += payload["messages"]
            (bcast_src, bcast_val, bcast_verts, bcast_vals,
             edge_verts, edge_vals,
             single_dst, single_val, single_pair) = payload["sends"]
            engine._fs_bcast_src.extend(bcast_src)
            engine._fs_bcast_val.extend(bcast_val)
            engine._fs_bcast_verts.extend(bcast_verts)
            engine._fs_bcast_vals.extend(bcast_vals)
            engine._fs_edge_verts.extend(edge_verts)
            engine._fs_edge_vals.extend(edge_vals)
            engine._fs_single_dst.extend(single_dst)
            engine._fs_single_val.extend(single_val)
            engine._fs_single_pair.extend(single_pair)
            for name, value in payload["agg_log"]:
                engine.aggregators_next[name] = (
                    engine.aggregators_next.get(name, 0.0) + value
                )
            engine.network.obs.apply_deltas(payload["metrics"])
        engine._flush_deferred_sends()
        return ran_total, costs

    def on_restart(self, engine) -> None:
        # Kill the pool; the next superstep re-forks from the rolled-back
        # engine image, so recovery is a *real* worker restart.
        self._shutdown_pool(graceful=False)

    def materialize(self, values):
        return np.array(values)

    def finish_run(self, engine) -> None:
        self._shutdown_pool(graceful=True)
        self._sh_values = None
        self._sh_active = None
        self._sh_combined = None
        self._sh_received = None
        arenas, self._arenas = self._arenas, []
        for arena in arenas:
            arena.unlink()
            arena.close()

    # -- pool teardown -------------------------------------------------------

    def _shutdown_pool(self, graceful: bool) -> None:
        for conn in self._conns:
            if graceful:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            proc.join(timeout=5 if graceful else 0.5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
