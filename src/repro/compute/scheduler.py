"""Bipartite-partition message scheduling and action scripts (Section 5.4).

From a local machine's point of view the graph is bipartite: local
vertices on one side, remote vertices on the other (Figure 9).  Before a
superstep can run on a local vertex, the messages from its remote
in-neighbors must be present.  Trinity's scheme:

1. **Hub vertices** — remote vertices "having a large degree and
   connecting to a great percentage of local vertices" — are excluded from
   partitioning; their messages are buffered for the whole iteration.
   (Paper estimate: on a scale-free graph with gamma = 2.16, buffering 1%
   of vertices serves 72.8% of message needs.)
2. The remaining local vertices are grouped into partitions whose message
   working sets fit the machine's buffer; each non-hub remote source is
   assigned to the partition that needs it most.
3. ``K_i`` — the remote sources partition *i* needs but that are assigned
   elsewhere — are fetched on demand while partition *i−1* runs.
4. Each remote machine receives an **action script**: the order in which
   to emit its sources' messages (partition by partition, including the
   ``K_i`` stragglers).  Machines merge the scripts they receive and
   replay them every iteration, since the restrictive model makes the
   pattern identical iteration after iteration.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..errors import ComputeError


@dataclass(frozen=True)
class ActionScript:
    """The message-emission order one remote machine must follow.

    ``schedule[i]`` lists the dense indices of sources (hosted on
    ``remote_machine``) whose messages are needed for partition ``i`` of
    ``local_machine``.  ``hub_sources`` are sent once, up front, and
    buffered for the whole iteration.
    """

    local_machine: int
    remote_machine: int
    hub_sources: tuple[int, ...]
    schedule: tuple[tuple[int, ...], ...]

    @property
    def total_sources(self) -> int:
        return len(self.hub_sources) + sum(len(s) for s in self.schedule)


@dataclass
class SchedulerPlan:
    """The full message-delivery plan for one local machine."""

    machine: int
    partitions: list[np.ndarray]            # local vertices per partition
    hub_sources: set[int]                   # remote hubs, buffered all iter
    assigned_sources: list[set[int]]        # non-hub sources per partition
    k_sets: list[set[int]]                  # K_i: needed but owned elsewhere
    action_scripts: dict[int, ActionScript] # remote machine -> script
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def partition_count(self) -> int:
        return len(self.partitions)


class BipartiteScheduler:
    """Builds :class:`SchedulerPlan`s from a CSR topology with inlinks."""

    def __init__(self, topology, hub_fraction: float = 0.01,
                 num_partitions: int = 4):
        if topology.in_indptr is None:
            raise ComputeError(
                "BipartiteScheduler needs a topology built with "
                "include_inlinks=True"
            )
        if num_partitions < 1:
            raise ComputeError("num_partitions must be >= 1")
        if not 0.0 <= hub_fraction < 1.0:
            raise ComputeError("hub_fraction must be in [0, 1)")
        self.topology = topology
        self.num_partitions = num_partitions
        degrees = topology.out_degrees()
        if hub_fraction > 0 and len(degrees):
            quantile = float(np.quantile(degrees, 1.0 - hub_fraction))
            self.hub_threshold = max(2.0, quantile)
        else:
            self.hub_threshold = float("inf")

    def is_hub(self, vertex: int) -> bool:
        topo = self.topology
        degree = int(topo.out_indptr[vertex + 1] - topo.out_indptr[vertex])
        return degree >= self.hub_threshold

    def plan_for_machine(self, machine: int) -> SchedulerPlan:
        """Compute partitions, K sets and action scripts for one machine."""
        topo = self.topology
        local = topo.nodes_of_machine(machine)
        partitions = self._partition_local(local)

        # Remote in-neighbors per partition, split hub / non-hub.
        hub_sources: set[int] = set()
        needs: list[set[int]] = []
        total_incoming = 0
        hub_covered = 0
        for part in partitions:
            part_needs: set[int] = set()
            for vertex in part:
                for src in topo.in_neighbors(int(vertex)):
                    src = int(src)
                    if topo.machine[src] == machine:
                        continue
                    total_incoming += 1
                    if self.is_hub(src):
                        hub_sources.add(src)
                        hub_covered += 1
                    else:
                        part_needs.add(src)
            needs.append(part_needs)

        # Assign each non-hub source to the partition needing it most
        # (ties to the earliest partition, so its message arrives soonest).
        demand: dict[int, list[int]] = defaultdict(
            lambda: [0] * len(partitions)
        )
        for i, part_needs in enumerate(needs):
            for src in part_needs:
                demand[src][i] += 1
        owner: dict[int, int] = {
            src: int(np.argmax(votes)) for src, votes in demand.items()
        }
        assigned: list[set[int]] = [set() for _ in partitions]
        for src, i in owner.items():
            assigned[i].add(src)
        k_sets: list[set[int]] = [
            {src for src in part_needs if owner[src] != i}
            for i, part_needs in enumerate(needs)
        ]

        scripts = self._build_scripts(machine, hub_sources, assigned, k_sets)
        naive_buffer = len({s for n in needs for s in n} | hub_sources)
        peak_buffer = len(hub_sources) + max(
            (len(a) + len(k) for a, k in zip(assigned, k_sets)), default=0
        )
        plan = SchedulerPlan(
            machine=machine,
            partitions=partitions,
            hub_sources=hub_sources,
            assigned_sources=assigned,
            k_sets=k_sets,
            action_scripts=scripts,
        )
        plan.stats = {
            "incoming_message_needs": float(total_incoming),
            "hub_coverage": (hub_covered / total_incoming
                             if total_incoming else 0.0),
            "naive_buffer_slots": float(naive_buffer),
            "peak_buffer_slots": float(peak_buffer),
            "duplicate_deliveries": float(sum(len(k) for k in k_sets)),
        }
        return plan

    # -- helpers -------------------------------------------------------------

    def _partition_local(self, local: np.ndarray) -> list[np.ndarray]:
        """Split local vertices into chunks of balanced in-edge volume.

        Vertices are first clustered by their smallest in-neighbor (a
        one-pass min-hash of the source set), so vertices that consume
        the same remote messages land in the same partition — this is
        what keeps the paper's ``K_i`` sets small ("in the ideal case,
        local vertices in a partition only need messages from remote
        vertices in the same partition").
        """
        topo = self.topology
        if not len(local):
            return [np.empty(0, dtype=local.dtype)
                    for _ in range(self.num_partitions)]
        degrees = topo.out_degrees()
        min_source = np.empty(len(local), dtype=np.int64)
        for i, vertex in enumerate(local):
            sources = topo.in_neighbors(int(vertex))
            # Hubs are buffered machine-wide, so they carry no locality
            # signal; key on the rarest (non-hub) source instead.
            non_hub = sources[degrees[sources] < self.hub_threshold]
            if len(non_hub):
                min_source[i] = int(non_hub.min())
            elif len(sources):
                min_source[i] = int(sources.min())
            else:
                min_source[i] = -1
        local = local[np.argsort(min_source, kind="stable")]
        weights = (topo.in_indptr[local + 1] - topo.in_indptr[local]) + 1
        target = float(weights.sum()) / self.num_partitions
        partitions: list[np.ndarray] = []
        start = 0
        acc = 0.0
        for i, w in enumerate(weights):
            acc += float(w)
            if acc >= target and len(partitions) < self.num_partitions - 1:
                partitions.append(local[start:i + 1])
                start = i + 1
                acc = 0.0
        partitions.append(local[start:])
        while len(partitions) < self.num_partitions:
            partitions.append(np.empty(0, dtype=local.dtype))
        return partitions

    def _build_scripts(self, machine: int, hub_sources: set[int],
                       assigned: list[set[int]],
                       k_sets: list[set[int]]) -> dict[int, ActionScript]:
        topo = self.topology
        by_remote: dict[int, dict] = defaultdict(
            lambda: {"hubs": [], "parts": [[] for _ in assigned]}
        )
        for src in sorted(hub_sources):
            by_remote[int(topo.machine[src])]["hubs"].append(src)
        for i, sources in enumerate(assigned):
            # K_i messages are requested alongside partition i's own
            # sources; emit them in the same slot of the script.
            for src in sorted(sources | k_sets[i]):
                by_remote[int(topo.machine[src])]["parts"][i].append(src)
        return {
            remote: ActionScript(
                local_machine=machine,
                remote_machine=remote,
                hub_sources=tuple(entry["hubs"]),
                schedule=tuple(tuple(p) for p in entry["parts"]),
            )
            for remote, entry in by_remote.items()
        }


def merge_action_scripts(scripts: list[ActionScript]) -> list[int]:
    """Merge scripts received from several local machines into one send
    order (Section 5.4: "each machine merges the action scripts it
    receives from other machines").

    Interleaves partition slots round-robin across requesting machines so
    no requester starves, hubs first.  Returns the flat source order.
    """
    order: list[int] = []
    seen: set[tuple[int, int]] = set()
    for script in scripts:
        for src in script.hub_sources:
            key = (script.local_machine, src)
            if key not in seen:
                seen.add(key)
                order.append(src)
    max_parts = max((len(s.schedule) for s in scripts), default=0)
    for slot in range(max_parts):
        for script in scripts:
            if slot >= len(script.schedule):
                continue
            for src in script.schedule[slot]:
                key = (script.local_machine, src)
                if key not in seen:
                    seen.add(key)
                    order.append(src)
    return order
