"""Replaying action scripts: measured buffer occupancy (Section 5.4).

The scheduler (:mod:`repro.compute.scheduler`) plans *when* each remote
source's message should arrive: hub messages up front (buffered all
iteration), then partition by partition, with the ``K_i`` stragglers
alongside partition *i*.  This module actually replays one superstep's
message deliveries in three disciplines and measures the receiver's
peak message-buffer occupancy:

* **naive-buffer-all** — every remote message is buffered before any
  vertex runs (the first strawman of Section 5.4: "the total amount of
  messages is too big to be memory resident");
* **naive-on-demand** — no buffering: messages are re-requested each
  time a consumer partition runs, so hub messages are delivered many
  times (the second strawman: "a single message needed to be delivered
  multiple times");
* **scripted** — the action-script order: hubs once up front, each
  non-hub source delivered just before the single partition that owns
  it, freed when the partition retires.

The paper's claims, now measured: scripted delivery's peak buffer is a
fraction of buffer-all, with no duplicate deliveries beyond the K sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scheduler import SchedulerPlan


@dataclass(frozen=True)
class ReplayReport:
    """Buffer behaviour of one delivery discipline."""

    discipline: str
    peak_buffer_slots: int      # max simultaneously-buffered sources
    total_deliveries: int       # messages that crossed the wire
    duplicate_deliveries: int   # deliveries beyond one per needed source


def _partition_needs(plan: SchedulerPlan, topology) -> list[set[int]]:
    """Remote (non-hub) sources each partition's vertices consume."""
    needs: list[set[int]] = []
    hub = plan.hub_sources
    for partition in plan.partitions:
        sources: set[int] = set()
        for vertex in partition:
            for src in topology.in_neighbors(int(vertex)):
                src = int(src)
                if (topology.machine[src] != plan.machine
                        and src not in hub):
                    sources.add(src)
        needs.append(sources)
    return needs


def replay_naive_buffer_all(plan: SchedulerPlan, topology) -> ReplayReport:
    """Buffer every remote source's message before running anything."""
    needs = _partition_needs(plan, topology)
    all_sources = set(plan.hub_sources)
    for sources in needs:
        all_sources |= sources
    return ReplayReport(
        discipline="naive-buffer-all",
        peak_buffer_slots=len(all_sources),
        total_deliveries=len(all_sources),
        duplicate_deliveries=0,
    )


def replay_naive_on_demand(plan: SchedulerPlan, topology) -> ReplayReport:
    """Fetch each partition's messages when it runs, discard after."""
    needs = _partition_needs(plan, topology)
    hub = plan.hub_sources
    peak = 0
    deliveries = 0
    needed_once: set[int] = set()
    for index, sources in enumerate(needs):
        # Hubs this partition consumes are re-fetched too (no buffer).
        hub_here: set[int] = set()
        for vertex in plan.partitions[index]:
            for src in topology.in_neighbors(int(vertex)):
                src = int(src)
                if topology.machine[src] != plan.machine and src in hub:
                    hub_here.add(src)
        window = sources | hub_here
        needed_once |= window
        peak = max(peak, len(window))
        deliveries += len(window)
    return ReplayReport(
        discipline="naive-on-demand",
        peak_buffer_slots=peak,
        total_deliveries=deliveries,
        duplicate_deliveries=deliveries - len(needed_once),
    )


def replay_scripted(plan: SchedulerPlan, topology) -> ReplayReport:
    """The action-script discipline of Section 5.4."""
    needs = _partition_needs(plan, topology)
    hub_count = len(plan.hub_sources)
    peak = hub_count
    deliveries = hub_count
    needed_once = set(plan.hub_sources)
    for index, sources in enumerate(needs):
        assigned = plan.assigned_sources[index]
        k_set = plan.k_sets[index]
        window = hub_count + len(assigned) + len(k_set)
        peak = max(peak, window)
        deliveries += len(assigned) + len(k_set)
        needed_once |= assigned | k_set
    return ReplayReport(
        discipline="scripted",
        peak_buffer_slots=peak,
        total_deliveries=deliveries,
        duplicate_deliveries=deliveries - len(needed_once),
    )


def replay_all(plan: SchedulerPlan, topology) -> dict[str, ReplayReport]:
    """All three disciplines over one plan, keyed by discipline name."""
    reports = [
        replay_naive_buffer_all(plan, topology),
        replay_naive_on_demand(plan, topology),
        replay_scripted(plan, topology),
    ]
    return {report.discipline: report for report in reports}
