"""Graph computation paradigms (Section 5) and their runtime machinery.

* :mod:`~repro.compute.vertex` — the vertex-program abstraction, covering
  both of the paper's models: the **general** model (a vertex may message
  any vertex, as in Pregel) and the **restrictive** model (a vertex
  messages a fixed set — its neighbors), which unlocks Trinity's message
  optimisations.
* :mod:`~repro.compute.bsp` — the bulk-synchronous engine: supersteps,
  barriers, aggregators, halting, hub-vertex message buffering, and the
  per-superstep simulated-time accounting used by every offline benchmark.
* :mod:`~repro.compute.scheduler` — the bipartite-partition message
  scheduler and action scripts of Section 5.4.
* :mod:`~repro.compute.residence` — the Type A / Type B memory-residence
  model and the paper's memory formulas (Section 5.4).
* :mod:`~repro.compute.termination` — Safra's termination-detection
  algorithm, used to snapshot asynchronous computations (Section 6.2).
* :mod:`~repro.compute.async_engine` — asynchronous (GraphChi-style)
  vertex computation with periodic-interruption snapshots.
* :mod:`~repro.compute.checkpoint` — BSP checkpointing to TFS.
"""

from .vertex import BatchComputeContext, ComputeContext, VertexProgram
from .backend import ExecutionBackend, InProcessBackend, resolve_backend
from .bsp import BspEngine, BspResult, SuperstepReport
from .shm import SharedMemoryBackend
from .scheduler import ActionScript, BipartiteScheduler, SchedulerPlan
from .action_replay import ReplayReport, replay_all
from .residence import MemoryResidenceModel, ResidencePlan
from .termination import SafraDetector
from .async_engine import AsyncEngine, AsyncResult
from .checkpoint import CheckpointManager

__all__ = [
    "VertexProgram",
    "ComputeContext",
    "BatchComputeContext",
    "BspEngine",
    "BspResult",
    "SuperstepReport",
    "ExecutionBackend",
    "InProcessBackend",
    "SharedMemoryBackend",
    "resolve_backend",
    "BipartiteScheduler",
    "SchedulerPlan",
    "ActionScript",
    "ReplayReport",
    "replay_all",
    "MemoryResidenceModel",
    "ResidencePlan",
    "SafraDetector",
    "AsyncEngine",
    "AsyncResult",
    "CheckpointManager",
]
