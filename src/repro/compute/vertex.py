"""Vertex programs: the user-facing abstraction for offline analytics.

Section 5.3 contrasts two vertex-centric models:

* the **general** model (Pregel): "a vertex may receive messages sent to
  it by any vertex in the previous super-step, send messages to any
  vertex, and modify its vertex values";
* the **restrictive** model (Trinity): a vertex exchanges messages with a
  *fixed* set of vertices, usually its neighbors, which makes the
  communication pattern predictable and optimisable.

A :class:`VertexProgram` declares which model it needs via
``restrictive``; restrictive programs should send with
``ctx.send_to_neighbors`` so the engine can apply hub-vertex buffering and
action-script scheduling.
"""

from __future__ import annotations

from ..errors import ComputeError


class VertexProgram:
    """Base class for vertex-centric computations.

    Subclasses override :meth:`compute`; optional hooks cover
    initialisation and per-superstep aggregation.  Vertex state lives in
    ``values`` arrays owned by the engine, keyed by dense vertex index.
    """

    restrictive: bool = True
    """True if vertices only message their out-neighbors (Trinity's model).
    The engine verifies this at runtime and raises on violations, since
    the message-scheduling optimisations are only sound under it."""

    uniform_messages: bool = False
    """True if, within one superstep, a vertex sends the *same* value to
    every destination (PageRank, connected components...).  Uniform
    restrictive programs are eligible for hub-vertex buffering: a hub's
    value crosses the wire once per machine instead of once per edge."""

    message_bytes: int = 16
    """Modelled wire size per logical message (8-byte dst + 8-byte value
    by default); only affects simulated time, not results."""

    def init(self, ctx: "ComputeContext", vertex: int) -> None:
        """Called for every vertex before superstep 0."""

    def compute(self, ctx: "ComputeContext", vertex: int,
                messages: list) -> None:
        """The superstep kernel; must be overridden."""
        raise NotImplementedError

    def after_superstep(self, ctx: "ComputeContext") -> None:
        """Called once per superstep after the barrier (aggregation etc.)."""


class ComputeContext:
    """Per-superstep view handed to :meth:`VertexProgram.compute`.

    Created by the engine; exposes topology, messaging and aggregation.
    The context is bound to one vertex at a time via ``_current``.
    """

    def __init__(self, engine):
        self._engine = engine
        self._current = -1
        self.superstep = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._engine.topology.n

    def out_neighbors(self):
        """Dense indices of the current vertex's out-neighbors."""
        return self._engine.topology.out_neighbors(self._current)

    def out_degree(self) -> int:
        topo = self._engine.topology
        return int(topo.out_indptr[self._current + 1]
                   - topo.out_indptr[self._current])

    def node_id(self, vertex: int) -> int:
        """The 64-bit cell id behind a dense vertex index."""
        return int(self._engine.topology.node_ids[vertex])

    # -- state ---------------------------------------------------------------

    def get_value(self, vertex: int):
        return self._engine.values[vertex]

    def set_value(self, vertex: int, value) -> None:
        self._engine.values[vertex] = value

    @property
    def value(self):
        """Value of the vertex currently being computed."""
        return self._engine.values[self._current]

    @value.setter
    def value(self, new_value) -> None:
        self._engine.values[self._current] = new_value

    # -- messaging ---------------------------------------------------------

    def send(self, dst: int, value) -> None:
        """Send ``value`` to dense vertex ``dst`` (general model).

        Restrictive programs may only target out-neighbors; the engine
        enforces this.
        """
        self._engine.enqueue(self._current, dst, value)

    def send_to_neighbors(self, value) -> None:
        """Send the same value to every out-neighbor (restrictive fast
        path, eligible for hub buffering)."""
        self._engine.enqueue_to_neighbors(self._current, value)

    def vote_to_halt(self) -> None:
        """Deactivate the current vertex until a message wakes it."""
        self._engine.halt(self._current)

    # -- aggregation ---------------------------------------------------------

    def aggregate(self, name: str, value: float) -> None:
        """Add ``value`` into the superstep's named sum-aggregator."""
        self._engine.aggregators_next[name] = (
            self._engine.aggregators_next.get(name, 0.0) + value
        )

    def aggregated(self, name: str, default: float = 0.0) -> float:
        """Read the aggregator value from the *previous* superstep."""
        return self._engine.aggregators.get(name, default)

    # -- internal ------------------------------------------------------------

    def _bind(self, vertex: int) -> None:
        if vertex < 0 or vertex >= self._engine.topology.n:
            raise ComputeError(f"vertex index {vertex} out of range")
        self._current = vertex
