"""Vertex programs: the user-facing abstraction for offline analytics.

Section 5.3 contrasts two vertex-centric models:

* the **general** model (Pregel): "a vertex may receive messages sent to
  it by any vertex in the previous super-step, send messages to any
  vertex, and modify its vertex values";
* the **restrictive** model (Trinity): a vertex exchanges messages with a
  *fixed* set of vertices, usually its neighbors, which makes the
  communication pattern predictable and optimisable.

A :class:`VertexProgram` declares which model it needs via
``restrictive``; restrictive programs should send with
``ctx.send_to_neighbors`` so the engine can apply hub-vertex buffering and
action-script scheduling.

Two execution paths consume a program (see ``repro.compute.bsp``):

* the **per-vertex reference path** calls :meth:`VertexProgram.compute`
  once per active vertex with a Python list inbox — the semantics both
  paths must agree on;
* the **vectorized fast path** activates when the program declares a
  :attr:`VertexProgram.combiner`.  Messages are then folded at enqueue
  time into a dense numpy value array plus a received-mask, and programs
  that additionally implement :meth:`VertexProgram.compute_batch` run one
  numpy kernel per machine slice instead of a Python loop.
"""

from __future__ import annotations

import numpy as np

from ..errors import ComputeError

#: Message-fold operators a program may declare via ``combiner``.
COMBINERS = ("sum", "min", "max")


class VertexProgram:
    """Base class for vertex-centric computations.

    Subclasses override :meth:`compute`; optional hooks cover
    initialisation and per-superstep aggregation.  Vertex state lives in
    ``values`` arrays owned by the engine, keyed by dense vertex index.
    """

    restrictive: bool = True
    """True if vertices only message their out-neighbors (Trinity's model).
    The engine verifies this at runtime and raises on violations, since
    the message-scheduling optimisations are only sound under it."""

    uniform_messages: bool = False
    """True if, within one superstep, a vertex sends the *same* value to
    every destination (PageRank, connected components...).  Uniform
    restrictive programs are eligible for hub-vertex buffering: a hub's
    value crosses the wire once per machine instead of once per edge."""

    message_bytes: int = 16
    """Modelled wire size per logical message (8-byte dst + 8-byte value
    by default); only affects simulated time, not results."""

    combiner: str | None = None
    """Optional message combiner: ``"sum"``, ``"min"`` or ``"max"``.
    Declaring one states that :meth:`compute` only ever consumes the
    fold of its inbox (``sum(messages)`` / ``min(messages)`` /
    ``max(messages)``), never individual messages.  The engine then
    replaces the ``list[list]`` inbox with a dense numpy value array plus
    a received-mask and folds messages at enqueue time — the GraphD-style
    optimisation that removes per-message Python objects entirely.
    Requires numeric messages/values (see ``value_dtype``), and the
    program must initialise every vertex's value in ``init``/
    ``init_batch`` (the dense array defaults untouched vertices to zero,
    where the reference path would leave ``None``)."""

    value_dtype = np.float64
    """Numpy dtype for the dense value/combined arrays used by the
    vectorized path.  Programs with integer state (BFS levels, WCC
    labels) should set ``np.int64``.  Only consulted when ``combiner``
    is declared."""

    def init(self, ctx: "ComputeContext", vertex: int) -> None:
        """Called for every vertex before superstep 0."""

    def init_batch(self, ctx: "BatchComputeContext") -> None:
        """Vectorized initialisation: fill ``ctx.values`` in one shot.

        Optional.  When overridden, the fast path calls it once instead
        of looping :meth:`init` over every vertex.  Must leave values
        identical to what the per-vertex :meth:`init` loop would."""
        raise NotImplementedError

    def compute(self, ctx: "ComputeContext", vertex: int,
                messages: list) -> None:
        """The superstep kernel; must be overridden."""
        raise NotImplementedError

    def compute_batch(self, ctx: "BatchComputeContext",
                      vertices: np.ndarray, combined: np.ndarray,
                      received: np.ndarray) -> None:
        """Vectorized superstep kernel over one machine's vertex slice.

        Optional; requires ``combiner``.  ``vertices`` holds the dense
        indices (ascending) of the machine's vertices that ran this
        superstep, ``combined[i]`` the folded inbox of ``vertices[i]``
        (the combiner's identity where nothing arrived) and
        ``received[i]`` whether any message arrived.  The kernel reads
        and writes ``ctx.values``, sends with the batch primitives, and
        must only halt vertices from its own slice.  Semantics must match
        :meth:`compute` exactly — the engine's ``cross_check`` flag and
        the equivalence tests enforce it."""
        raise NotImplementedError

    @property
    def batch_eligible(self) -> bool:
        """Whether the engine may use :meth:`compute_batch` for this
        program instance.  Defaults to "the subclass overrides it";
        programs can veto per-instance (e.g. SSSP with a weights mapping
        the kernel cannot vectorize)."""
        return type(self).compute_batch is not VertexProgram.compute_batch

    def after_superstep(self, ctx) -> None:
        """Called once per superstep after the barrier (aggregation etc.)."""


class _AggregatorMixin:
    """Shared sum-aggregator view (both context flavours expose it)."""

    _engine = None

    def aggregate(self, name: str, value: float) -> None:
        """Add ``value`` into the superstep's named sum-aggregator."""
        self._engine.aggregators_next[name] = (
            self._engine.aggregators_next.get(name, 0.0) + value
        )

    def aggregated(self, name: str, default: float = 0.0) -> float:
        """Read the aggregator value from the *previous* superstep."""
        return self._engine.aggregators.get(name, default)


class ComputeContext(_AggregatorMixin):
    """Per-superstep view handed to :meth:`VertexProgram.compute`.

    Created by the engine; exposes topology, messaging and aggregation.
    The context is bound to one vertex at a time via ``_current``.
    """

    def __init__(self, engine):
        self._engine = engine
        self._current = -1
        self.superstep = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._engine.topology.n

    def out_neighbors(self):
        """Dense indices of the current vertex's out-neighbors."""
        return self._engine.topology.out_neighbors(self._current)

    def out_degree(self) -> int:
        topo = self._engine.topology
        return int(topo.out_indptr[self._current + 1]
                   - topo.out_indptr[self._current])

    def out_edge_range(self) -> tuple[int, int]:
        """The current vertex's ``[start, end)`` slice into the
        topology's ``out_indices`` — lets programs carry per-edge state
        (e.g. weights) in arrays aligned with the CSR edge order."""
        topo = self._engine.topology
        return (int(topo.out_indptr[self._current]),
                int(topo.out_indptr[self._current + 1]))

    def node_id(self, vertex: int) -> int:
        """The 64-bit cell id behind a dense vertex index."""
        return int(self._engine.topology.node_ids[vertex])

    # -- state ---------------------------------------------------------------

    def get_value(self, vertex: int):
        return self._engine.values[vertex]

    def set_value(self, vertex: int, value) -> None:
        self._engine.values[vertex] = value

    @property
    def value(self):
        """Value of the vertex currently being computed."""
        return self._engine.values[self._current]

    @value.setter
    def value(self, new_value) -> None:
        self._engine.values[self._current] = new_value

    # -- messaging ---------------------------------------------------------

    def send(self, dst: int, value) -> None:
        """Send ``value`` to dense vertex ``dst`` (general model).

        Restrictive programs may only target out-neighbors; the engine
        enforces this.
        """
        self._engine.enqueue(self._current, dst, value)

    def send_to_neighbors(self, value) -> None:
        """Send the same value to every out-neighbor (restrictive fast
        path, eligible for hub buffering)."""
        self._engine.enqueue_to_neighbors(self._current, value)

    def vote_to_halt(self) -> None:
        """Deactivate the current vertex until a message wakes it."""
        self._engine.halt(self._current)

    # -- internal ------------------------------------------------------------

    def _bind(self, vertex: int) -> None:
        if vertex < 0 or vertex >= self._engine.topology.n:
            raise ComputeError(f"vertex index {vertex} out of range")
        self._current = vertex


class BatchComputeContext(_AggregatorMixin):
    """Vectorized view handed to :meth:`VertexProgram.compute_batch`.

    All primitives take dense-index arrays; sends fold straight into the
    engine's combined-inbox array for the next superstep, and traffic is
    charged per machine pair with one ``np.bincount`` — no per-message
    Python objects anywhere.
    """

    def __init__(self, engine):
        self._engine = engine
        self.superstep = 0

    # -- topology ------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        return self._engine.topology.n

    @property
    def values(self) -> np.ndarray:
        """The engine's dense value array (mutable, length ``n``)."""
        return self._engine.values

    def out_degrees(self, vertices: np.ndarray) -> np.ndarray:
        """Out-degree of each vertex in ``vertices``."""
        return self._engine._fast.degrees[vertices]

    def out_edges(self, vertices: np.ndarray) -> tuple[np.ndarray,
                                                       np.ndarray]:
        """``(dst, positions)`` for the out-edges of ``vertices``,
        concatenated per vertex in CSR slice order.  ``positions`` are
        global indices into ``topology.out_indices``, so per-edge state
        (e.g. SSSP weights) aligned with the CSR can be gathered."""
        fast = self._engine._fast
        edge_idx = fast.edge_slice(vertices)
        return fast.edge_dst[edge_idx], fast.edge_pos[edge_idx]

    # -- messaging -----------------------------------------------------------

    def send_to_neighbors(self, vertices: np.ndarray,
                          values: np.ndarray) -> None:
        """Each ``vertices[i]`` broadcasts ``values[i]`` to all its
        out-neighbors (uniform — eligible for hub buffering)."""
        self._engine.batch_send_uniform(vertices, values)

    def send_along_edges(self, vertices: np.ndarray,
                         edge_values: np.ndarray) -> None:
        """Per-edge sends: ``edge_values`` aligns with the concatenated
        out-edges of ``vertices`` (the order :meth:`out_edges` returns).
        Non-uniform, so hub buffering does not apply."""
        self._engine.batch_send_edges(vertices, edge_values)

    def halt(self, vertices: np.ndarray) -> None:
        """Vote-to-halt for every vertex in ``vertices``."""
        self._engine.halt_many(vertices)
