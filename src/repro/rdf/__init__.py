"""RDF on Trinity (the Figure 14b workload).

The paper evaluates "four SPARQL queries on a LUBM RDF data set" served
by the Trinity-based distributed RDF engine of Zeng et al. (VLDB'13),
which models RDF as a native graph in the memory cloud: entities are
cells, and each cell stores its outgoing and incoming predicate-grouped
adjacency.  This package implements that design:

* :mod:`~repro.rdf.store` — dictionary-encoded triple store over the
  memory cloud with predicate-grouped adjacency cells.
* :mod:`~repro.rdf.sparql` — a basic-graph-pattern SPARQL subset
  (SELECT / WHERE with triple patterns) executed by distributed
  binding joins with simulated-cost accounting.
* :mod:`~repro.rdf.lubm` — a LUBM-like university-domain generator and
  the four benchmark queries.
"""

from .store import RdfStore
from .sparql import SparqlQuery, SparqlResult, execute_sparql, parse_sparql
from .lubm import LUBM_QUERIES, generate_lubm

__all__ = [
    "RdfStore",
    "SparqlQuery",
    "SparqlResult",
    "parse_sparql",
    "execute_sparql",
    "generate_lubm",
    "LUBM_QUERIES",
]
