"""A SPARQL basic-graph-pattern subset with distributed execution.

Supports ``SELECT ?v1 ?v2 WHERE { s p o . s p o . ... }`` where each
position is either a variable (``?x``) or a constant IRI/name.  That
covers the LUBM benchmark queries of Figure 14(b), which are
conjunctive patterns.

Execution is a binding join, ordered by estimated selectivity: each
pattern extends the binding table through the store's predicate-grouped
adjacency (a cell access on the machine owning the bound endpoint).  As
in the subgraph matcher, bindings shipped between machines are charged as
messages; more machines means smaller per-machine candidate sets but more
cross-machine binding traffic — the trade-off behind the Figure 14
speedup curves.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..config import ComputeParams
from ..errors import QueryError
from ..net.simnet import ParallelRound, SimNetwork
from .store import RdfStore


@dataclass(frozen=True)
class TriplePattern:
    subject: str
    predicate: str
    obj: str

    def variables(self) -> set[str]:
        return {t for t in (self.subject, self.obj) if t.startswith("?")}


@dataclass(frozen=True)
class SparqlQuery:
    select: tuple[str, ...]
    patterns: tuple[TriplePattern, ...]


@dataclass
class SparqlResult:
    query: SparqlQuery
    rows: list[tuple[str, ...]] = field(default_factory=list)
    round_times: list[float] = field(default_factory=list)
    messages: int = 0
    bindings_examined: int = 0

    @property
    def elapsed(self) -> float:
        return sum(self.round_times)


def parse_sparql(text: str) -> SparqlQuery:
    """Parse the supported SELECT/WHERE subset.

    Raises :class:`QueryError` with a position hint on malformed input.
    """
    stripped = " ".join(text.split())
    upper = stripped.upper()
    if not upper.startswith("SELECT "):
        raise QueryError("query must start with SELECT")
    where_at = upper.find(" WHERE ")
    if where_at < 0:
        raise QueryError("query must contain WHERE")
    select_part = stripped[len("SELECT "):where_at].split()
    if not select_part:
        raise QueryError("SELECT list is empty")
    for var in select_part:
        if not var.startswith("?"):
            raise QueryError(f"SELECT term {var!r} is not a variable")
    body = stripped[where_at + len(" WHERE "):].strip()
    if not (body.startswith("{") and body.endswith("}")):
        raise QueryError("WHERE clause must be braced")
    body = body[1:-1].strip()
    patterns = []
    for clause in filter(None, (c.strip() for c in body.split("."))):
        terms = clause.split()
        if len(terms) != 3:
            raise QueryError(f"pattern {clause!r} must have 3 terms")
        patterns.append(TriplePattern(*(t.strip("<>") for t in terms)))
    if not patterns:
        raise QueryError("WHERE clause has no patterns")
    query = SparqlQuery(tuple(select_part), tuple(patterns))
    pattern_vars = set()
    for pattern in query.patterns:
        pattern_vars |= pattern.variables()
    unknown = set(query.select) - pattern_vars
    if unknown:
        raise QueryError(f"SELECT variables not bound: {sorted(unknown)}")
    return query


def _selectivity(store: RdfStore, pattern: TriplePattern,
                 bound: set[str]) -> float:
    """Lower is more selective; used to order the binding join."""
    score = 0.0
    for term in (pattern.subject, pattern.obj):
        if term.startswith("?"):
            score += 0.0 if term in bound else 1.0
    if not pattern.subject.startswith("?"):
        score -= 0.5
    if not pattern.obj.startswith("?"):
        score -= 0.5
    return score


def execute_sparql(store: RdfStore, query: SparqlQuery | str,
                   network: SimNetwork | None = None,
                   params: ComputeParams | None = None,
                   max_rows: int = 100_000) -> SparqlResult:
    """Run a BGP query against the store with cost accounting."""
    if isinstance(query, str):
        query = parse_sparql(query)
    network = network or SimNetwork()
    params = params or ComputeParams()
    result = SparqlResult(query=query)

    remaining = list(query.patterns)
    bindings: list[dict[str, int]] = [{}]
    bound: set[str] = set()
    while remaining:
        remaining.sort(key=lambda p: _selectivity(store, p, bound))
        pattern = remaining.pop(0)
        bindings = _apply_pattern(
            store, pattern, bindings, bound, result, network, params,
            max_rows,
        )
        bound |= pattern.variables()
        if not bindings:
            break

    seen = set()
    for binding in bindings:
        row = tuple(store.iri_of(binding[v]) for v in query.select)
        if row not in seen:
            seen.add(row)
            result.rows.append(row)
    result.rows.sort()
    return result


def _resolve(store: RdfStore, term: str, binding: dict) -> int | None:
    """Constant or bound-variable term → resource id (None if unbound)."""
    if term.startswith("?"):
        return binding.get(term)
    return store.resource_id(term)


def _apply_pattern(store, pattern, bindings, bound, result, network,
                   params, max_rows):
    round_ = ParallelRound(network)
    compute: dict[int, float] = defaultdict(float)
    remote_traffic = [0, 0]  # messages, bytes crossing machines
    out: list[dict[str, int]] = []

    for binding in bindings:
        subject = _resolve(store, pattern.subject, binding)
        obj = _resolve(store, pattern.obj, binding)
        result.bindings_examined += 1
        row_bytes = 8 * (len(binding) + 1)
        if subject is not None:
            machine = store.machine_of(subject)
            candidates = store.out(subject, pattern.predicate)
            compute[machine] += (params.cell_access_cost
                                 + len(candidates) * params.edge_scan_cost)
            for candidate in candidates:
                if obj is not None:
                    if candidate == obj:
                        out.append(dict(binding))
                elif pattern.obj.startswith("?"):
                    extended = dict(binding)
                    extended[pattern.obj] = candidate
                    target = store.machine_of(candidate)
                    if target != machine:
                        remote_traffic[0] += 1
                        remote_traffic[1] += row_bytes
                        result.messages += 1
                    out.append(extended)
        elif obj is not None:
            machine = store.machine_of(obj)
            candidates = store.incoming(obj, pattern.predicate)
            compute[machine] += (params.cell_access_cost
                                 + len(candidates) * params.edge_scan_cost)
            for candidate in candidates:
                extended = dict(binding)
                extended[pattern.subject] = candidate
                target = store.machine_of(candidate)
                if target != machine:
                    remote_traffic[0] += 1
                    remote_traffic[1] += row_bytes
                    result.messages += 1
                out.append(extended)
        else:
            # Fully unbound pattern: scan every resource's outgoing group
            # for the predicate.  Expensive (one cell access per
            # resource) and priced accordingly; selective queries never
            # reach this path because of the join ordering.
            for subject_id in range(store.resource_count):
                machine = store.machine_of(subject_id)
                targets = store.out(subject_id, pattern.predicate)
                compute[machine] += (params.cell_access_cost
                                     + len(targets) * params.edge_scan_cost)
                for candidate in targets:
                    extended = dict(binding)
                    extended[pattern.subject] = subject_id
                    extended[pattern.obj] = candidate
                    out.append(extended)
                if len(out) > max_rows:
                    break
        if len(out) > max_rows:
            raise QueryError(
                f"binding table exceeded {max_rows} rows; query too "
                "unselective"
            )

    # Binding rows are independent join tasks: the per-row compute
    # spreads across the cluster (remote candidate fetches are already
    # charged as messages), like the subgraph matcher's exploration.
    machines = store.cloud.config.machines
    total_compute = sum(compute.values())
    pairs = max(1, machines * (machines - 1))
    for machine in range(machines):
        round_.add_compute(machine, total_compute / machines)
    if remote_traffic[0]:
        for src in range(machines):
            for dst in range(machines):
                if src != dst:
                    round_.add_message(
                        src, dst,
                        remote_traffic[1] // pairs,
                        max(1, remote_traffic[0] // pairs),
                    )
    result.round_times.append(
        round_.finish(parallelism=params.threads_per_machine)
    )
    return out
