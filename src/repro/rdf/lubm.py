"""A LUBM-like university-domain RDF generator and benchmark queries.

The real Lehigh University Benchmark dataset cannot ship offline, so this
generator reproduces its schema (universities → departments →
professors / students / courses with the standard predicates) and scale
knobs.  Figure 14(b)'s experiment runs four SPARQL queries of increasing
join complexity; the four below mirror LUBM's canonical mix: one highly
selective lookup, two medium star joins, and one multi-hop path join.
"""

from __future__ import annotations

import random

from .store import RdfStore

TYPE = "rdf:type"

LUBM_QUERIES = {
    # Q1: selective lookup — students taking one specific course.
    "Q1": (
        "SELECT ?x WHERE { "
        "?x rdf:type GraduateStudent . "
        "?x takesCourse <Course0_of_Dept0_of_Univ0> }"
    ),
    # Q3: star join — publications/professor-like star on one anchor.
    "Q3": (
        "SELECT ?x WHERE { "
        "?x rdf:type FullProfessor . "
        "?x worksFor <Dept0_of_Univ0> }"
    ),
    # Q5: unanchored membership sweep — every undergraduate with their
    # department (LUBM's large "flat" queries; volume grows with data).
    "Q5": (
        "SELECT ?x ?d WHERE { "
        "?x rdf:type UndergraduateStudent . "
        "?x memberOf ?d }"
    ),
    # Q7: unanchored triangle join (LUBM Q9's shape) — students taking a
    # course taught by their own advisor.
    "Q7": (
        "SELECT ?x ?p WHERE { "
        "?x advisor ?p . "
        "?p teacherOf ?y . "
        "?x takesCourse ?y }"
    ),
}


def generate_lubm(store: RdfStore, universities: int = 2,
                  departments_per_university: int = 4,
                  professors_per_department: int = 6,
                  students_per_department: int = 60,
                  courses_per_department: int = 10,
                  seed: int = 0) -> None:
    """Populate ``store`` with a LUBM-shaped dataset.

    Call ``store.finalize()`` afterwards (left to the caller so several
    generators can feed one store).
    """
    rng = random.Random(seed)
    for u in range(universities):
        university = f"Univ{u}"
        store.add_triple(university, TYPE, "University")
        for d in range(departments_per_university):
            department = f"Dept{d}_of_{university}"
            store.add_triple(department, TYPE, "Department")
            store.add_triple(department, "subOrganizationOf", university)

            courses = []
            for c in range(courses_per_department):
                course = f"Course{c}_of_{department}"
                store.add_triple(course, TYPE, "Course")
                courses.append(course)

            professors = []
            for p in range(professors_per_department):
                professor = f"Prof{p}_of_{department}"
                rank = "FullProfessor" if p % 3 == 0 else "AssociateProfessor"
                store.add_triple(professor, TYPE, rank)
                store.add_triple(professor, "worksFor", department)
                degree_univ = f"Univ{rng.randrange(universities)}"
                store.add_triple(
                    professor, "undergraduateDegreeFrom", degree_univ
                )
                taught = rng.sample(
                    courses, k=min(2, len(courses))
                )
                for course in taught:
                    store.add_triple(professor, "teacherOf", course)
                professors.append(professor)

            for s in range(students_per_department):
                graduate = s % 5 == 0
                kind = ("GraduateStudent" if graduate
                        else "UndergraduateStudent")
                student = f"Student{s}_of_{department}"
                store.add_triple(student, TYPE, kind)
                store.add_triple(student, "memberOf", department)
                for course in rng.sample(courses, k=min(3, len(courses))):
                    store.add_triple(student, "takesCourse", course)
                if graduate and professors:
                    store.add_triple(
                        student, "advisor", rng.choice(professors)
                    )
