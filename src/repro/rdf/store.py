"""Dictionary-encoded RDF store over the memory cloud.

Following the Trinity RDF design (Zeng et al., cited as [36]):

* every IRI/literal is dictionary-encoded to a 64-bit id,
* every entity is a cell whose blob holds its adjacency grouped by
  predicate, in both directions — so a SPARQL pattern like
  ``?x worksFor <dept>`` is a single cell access on <dept>'s machine
  (incoming ``worksFor`` list) instead of a scan,
* predicates are not cells (they are edge labels), matching the paper's
  advice that plain edges carry their data beside the cell id.

The cell schema is declared in TSL like any other Trinity data::

    cell struct Resource {
        string Iri;
        List<PredicateEdges> Out;
        List<PredicateEdges> In;
    }
    struct PredicateEdges { long Predicate; List<long> Targets; }
"""

from __future__ import annotations

from collections import defaultdict

from ..errors import QueryError
from ..memcloud import MemoryCloud
from ..tsl import compile_tsl

RESOURCE_TSL = """
[CellType: NodeCell]
cell struct Resource {
    string Iri;
    [EdgeType: SimpleEdge, ReferencedCell: Resource]
    List<PredicateEdges> Out;
    [EdgeType: SimpleEdge, ReferencedCell: Resource]
    List<PredicateEdges> In;
}
struct PredicateEdges {
    long Predicate;
    List<long> Targets;
}
"""


class RdfStore:
    """A triple store whose entities live as cells in a memory cloud."""

    def __init__(self, cloud: MemoryCloud):
        self.cloud = cloud
        self.schema = compile_tsl(RESOURCE_TSL)
        self._resource_type = self.schema.cell("Resource")
        self._iri_to_id: dict[str, int] = {}
        self._id_to_iri: list[str] = []
        self._pred_to_id: dict[str, int] = {}
        self._id_to_pred: list[str] = []
        self._out: dict[int, dict[int, list[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._in: dict[int, dict[int, list[int]]] = defaultdict(
            lambda: defaultdict(list)
        )
        self._triple_count = 0
        self._finalized = False
        # After finalize: decoded adjacency cache (memory-resident
        # topology, rebuilt from the blobs to prove the encoding works).
        self._cells: dict[int, dict] = {}

    # -- dictionary ---------------------------------------------------------

    def encode_resource(self, iri: str) -> int:
        rid = self._iri_to_id.get(iri)
        if rid is None:
            rid = len(self._id_to_iri)
            self._iri_to_id[iri] = rid
            self._id_to_iri.append(iri)
        return rid

    def encode_predicate(self, name: str) -> int:
        pid = self._pred_to_id.get(name)
        if pid is None:
            pid = len(self._id_to_pred)
            self._pred_to_id[name] = pid
            self._id_to_pred.append(name)
        return pid

    def iri_of(self, resource_id: int) -> str:
        return self._id_to_iri[resource_id]

    def resource_id(self, iri: str) -> int:
        try:
            return self._iri_to_id[iri]
        except KeyError:
            raise QueryError(f"unknown resource {iri!r}") from None

    def predicate_id(self, name: str) -> int:
        try:
            return self._pred_to_id[name]
        except KeyError:
            raise QueryError(f"unknown predicate {name!r}") from None

    @property
    def triple_count(self) -> int:
        return self._triple_count

    @property
    def resource_count(self) -> int:
        return len(self._id_to_iri)

    # -- loading -------------------------------------------------------------

    def add_triple(self, subject: str, predicate: str, obj: str) -> None:
        if self._finalized:
            raise QueryError("store already finalized")
        s = self.encode_resource(subject)
        p = self.encode_predicate(predicate)
        o = self.encode_resource(obj)
        self._out[s][p].append(o)
        self._in[o][p].append(s)
        self._triple_count += 1

    def finalize(self) -> None:
        """Encode every resource's adjacency into its cell blob."""
        if self._finalized:
            raise QueryError("store already finalized")
        self._finalized = True
        for rid, iri in enumerate(self._id_to_iri):
            record = {
                "Iri": iri,
                "Out": [
                    {"Predicate": p, "Targets": targets}
                    for p, targets in sorted(self._out.get(rid, {}).items())
                ],
                "In": [
                    {"Predicate": p, "Targets": targets}
                    for p, targets in sorted(self._in.get(rid, {}).items())
                ],
            }
            self.cloud.put(rid, self._resource_type.encode(record))
        self._out.clear()
        self._in.clear()

    # -- access --------------------------------------------------------------

    def _cell(self, resource_id: int) -> dict:
        cell = self._cells.get(resource_id)
        if cell is None:
            blob = self.cloud.get(resource_id)
            cell, _ = self._resource_type.decode(blob, 0)
            self._cells[resource_id] = cell
        return cell

    def out(self, resource_id: int, predicate: str) -> list[int]:
        """Objects of (resource, predicate, ?o)."""
        pid = self._pred_to_id.get(predicate)
        if pid is None:
            return []
        for group in self._cell(resource_id)["Out"]:
            if group["Predicate"] == pid:
                return list(group["Targets"])
        return []

    def incoming(self, resource_id: int, predicate: str) -> list[int]:
        """Subjects of (?s, predicate, resource)."""
        pid = self._pred_to_id.get(predicate)
        if pid is None:
            return []
        for group in self._cell(resource_id)["In"]:
            if group["Predicate"] == pid:
                return list(group["Targets"])
        return []

    def subjects_of(self, predicate: str, obj: str) -> list[int]:
        """All ?s with (?s, predicate, obj)."""
        return self.incoming(self.resource_id(obj), predicate)

    def machine_of(self, resource_id: int) -> int:
        return self.cloud.machine_of(resource_id)

    def degree(self, resource_id: int) -> int:
        cell = self._cell(resource_id)
        return (sum(len(g["Targets"]) for g in cell["Out"])
                + sum(len(g["Targets"]) for g in cell["In"]))
